package pdms

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// remoteChainNetwork builds the same berkeley→mit→oxford chain as
// chainNetwork, but with mit and oxford hosted behind a Loopback
// transport: berkeley is local, the other two are RemotePeers whose
// replicas sync over the wire codecs. The served peers are returned so
// tests can mutate "the remote node" directly.
func remoteChainNetwork(t *testing.T) (*Network, *Loopback, map[string]*Peer) {
	t.Helper()
	n := NewNetwork()
	b := NewPeer("berkeley", relation.NewSchema("course", relation.Attr("title"), relation.IntAttr("size")))
	m := NewPeer("mit", relation.NewSchema("subject", relation.Attr("name"), relation.IntAttr("enrollment")))
	o := NewPeer("oxford", relation.NewSchema("offering", relation.Attr("label"), relation.IntAttr("seats")))
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Insert("course", relation.Tuple{relation.SV("Ancient History"), relation.IV(40)}))
	must(b.Insert("course", relation.Tuple{relation.SV("Databases"), relation.IV(60)}))
	must(m.Insert("subject", relation.Tuple{relation.SV("AI"), relation.IV(80)}))
	must(o.Insert("offering", relation.Tuple{relation.SV("Greek Philosophy"), relation.IV(15)}))

	lb := NewLoopback(m, o)
	must(n.AddPeer(b))
	if _, err := n.AddRemotePeer(context.Background(), "mit", lb); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRemotePeer(context.Background(), "oxford", lb); err != nil {
		t.Fatal(err)
	}
	addGAV := func(id, srcPeer, srcQ, tgtPeer, tgtQ string) {
		t.Helper()
		mp := glav.MustNew(id, srcPeer, cq.MustParse(srcQ), tgtPeer, cq.MustParse(tgtQ))
		must(n.AddMapping(mp))
	}
	addGAV("b2m", "berkeley", "m(T, S) :- course(T, S)", "mit", "m(T, S) :- subject(T, S)")
	addGAV("m2b", "mit", "m(T, S) :- subject(T, S)", "berkeley", "m(T, S) :- course(T, S)")
	addGAV("m2o", "mit", "m(T, S) :- subject(T, S)", "oxford", "m(T, S) :- offering(T, S)")
	addGAV("o2m", "oxford", "m(T, S) :- offering(T, S)", "mit", "m(T, S) :- subject(T, S)")
	return n, lb, map[string]*Peer{"mit": m, "oxford": o}
}

// TestRemoteLoopbackMatchesInProcess is the differential anchor at this
// layer: the chain with two remote peers answers exactly like the
// all-local chainNetwork.
func TestRemoteLoopbackMatchesInProcess(t *testing.T) {
	local := chainNetwork(t)
	remote, _, _ := remoteChainNetwork(t)
	for _, q := range []struct{ peer, q string }{
		{"oxford", "q(L) :- offering(L, S)"},
		{"berkeley", "q(T) :- course(T, S)"},
		{"mit", "q(N) :- subject(N, E)"},
	} {
		want, err := local.Answer(q.peer, cq.MustParse(q.q), ReformOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Answer(q.peer, cq.MustParse(q.q), ReformOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Answers.Equal(want.Answers) {
			t.Errorf("%s %s: remote answers %v, in-process %v",
				q.peer, q.q, got.Answers.Rows(), want.Answers.Rows())
		}
	}
}

// TestRemoteFetchLazyAndFingerprintDriven asserts the fetch path's two
// core properties: warm queries move no tuples, and a remote data
// change re-scans only the relation whose fingerprint moved.
func TestRemoteFetchLazyAndFingerprintDriven(t *testing.T) {
	n, lb, served := remoteChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	res, err := n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 4 {
		t.Fatalf("cold answers = %d, want 4", res.Answers.Len())
	}
	cold := lb.Scans()
	if cold != 2 { // mit.subject + oxford.offering, exactly once each
		t.Fatalf("cold scans = %d, want 2", cold)
	}
	if _, err := n.Answer("berkeley", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}
	if warm := lb.Scans(); warm != cold {
		t.Fatalf("warm query scanned remotely: %d scans, want %d", warm, cold)
	}
	// A remote insert moves mit.subject's fingerprint; only that
	// relation is re-fetched, and the stale plan over the old replica is
	// not reused — the new row appears in the answers.
	if err := served["mit"].Insert("subject", relation.Tuple{relation.SV("Robotics"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	res, err = n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 5 {
		t.Fatalf("answers after remote insert = %d, want 5", res.Answers.Len())
	}
	if got := lb.Scans(); got != cold+1 {
		t.Fatalf("scans after remote insert = %d, want %d (only the changed relation)", got, cold+1)
	}
}

// TestRemoteAddSchemaInvalidatesPlans is the regression test for the
// InvalidateCaches/bumpTopology interaction: a schema added on the
// remote node must flow through the same atomic topoVersion path a
// local AddSchema takes, so reformulations (and the plans hanging off
// them) cached before the remote change are never reused.
func TestRemoteAddSchemaInvalidatesPlans(t *testing.T) {
	n, _, served := remoteChainNetwork(t)
	q := cq.MustParse("q(N) :- subject(N, E)")
	if _, err := n.Answer("mit", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}
	calls := n.reformCalls.Load()
	topo := n.topoVersion.Load()
	// Warm repeat: cached, no new reformulation.
	if _, err := n.Answer("mit", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := n.reformCalls.Load(); got != calls {
		t.Fatalf("warm repeat reformulated: %d calls, want %d", got, calls)
	}
	// The remote node grows a relation and stores data in it.
	oxford := served["oxford"]
	oxford.AddSchema(relation.NewSchema("seminar", relation.Attr("label"), relation.IntAttr("seats")))
	if err := oxford.Insert("seminar", relation.Tuple{relation.SV("Logic Seminar"), relation.IV(8)}); err != nil {
		t.Fatal(err)
	}
	// The next query observes the remote schema change: the mirror gains
	// the relation, topoVersion bumps, and the cached reformulation is
	// re-derived rather than reused.
	if _, err := n.Answer("mit", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := n.topoVersion.Load(); got == topo {
		t.Fatal("remote AddSchema did not bump topoVersion")
	}
	if got := n.reformCalls.Load(); got != calls+1 {
		t.Fatalf("post-AddSchema query reused stale reformulation: %d calls, want %d", got, calls+1)
	}
	if !n.Peer("oxford").HasRelation("seminar") {
		t.Fatal("mirror did not pick up the remote relation")
	}
	// The new relation is immediately mappable and queryable: seminars
	// surface at mit through a fresh mapping.
	mp := glav.MustNew("sem2m", "oxford", cq.MustParse("m(L, S) :- seminar(L, S)"),
		"mit", cq.MustParse("m(L, S) :- subject(L, S)"))
	if err := n.AddMapping(mp); err != nil {
		t.Fatal(err)
	}
	res, err := n.Answer("mit", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !keySet(res.Answers.Rows())[relation.Tuple{relation.SV("Logic Seminar")}.Key()] {
		t.Fatalf("remote seminar missing from answers: %v", res.Answers.Rows())
	}
}

// TestRemoteInvalidateCachesForcesRefetch asserts the out-of-band
// hammer reaches the distributed tier: after InvalidateCaches the next
// query re-scans referenced remote relations even though their
// fingerprints never moved.
func TestRemoteInvalidateCachesForcesRefetch(t *testing.T) {
	n, lb, _ := remoteChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	want, err := n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold := lb.Scans()
	n.InvalidateCaches()
	got, err := n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Scans() <= cold {
		t.Fatal("InvalidateCaches did not force a remote refetch")
	}
	if !got.Answers.Equal(want.Answers) {
		t.Fatal("refetched answers differ")
	}
}

// TestRemoteConcurrentQueries hammers the serialized remote prepare
// path from many goroutines; every client must see the full answer set
// (run under -race to check the replica/mirror synchronization).
func TestRemoteConcurrentQueries(t *testing.T) {
	n, _, _ := remoteChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := n.Answer("berkeley", q, ReformOptions{})
			if err != nil {
				errs <- err
				return
			}
			if res.Answers.Len() != 4 {
				errs <- fmt.Errorf("concurrent client saw %d answers, want 4", res.Answers.Len())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// cancellingTransport wraps a Transport and cancels a context after the
// first delivered batch of a scan — a deterministic mid-stream abort.
type cancellingTransport struct {
	Transport
	cancel context.CancelFunc
}

func (c *cancellingTransport) Scan(ctx context.Context, peer, rel string, deliver func([]relation.Tuple) error) error {
	first := true
	return c.Transport.Scan(ctx, peer, rel, func(batch []relation.Tuple) error {
		if err := deliver(batch); err != nil {
			return err
		}
		if first {
			first = false
			c.cancel()
		}
		return nil
	})
}

// TestRemoteCancelMidFetch cancels the request context between scan
// batches: Query must return the context error, and the network must
// keep serving afterwards.
func TestRemoteCancelMidFetch(t *testing.T) {
	n := NewNetwork()
	remote := NewPeer("big", relation.NewSchema("course", relation.Attr("title"), relation.IntAttr("size")))
	for i := 0; i < 3*DefaultScanBatch; i++ {
		if err := remote.Insert("course", relation.Tuple{relation.SV(fmt.Sprintf("c%04d", i)), relation.IV(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ct := &cancellingTransport{Transport: NewLoopback(remote), cancel: cancel}
	if _, err := n.AddRemotePeer(context.Background(), "big", ct); err != nil {
		t.Fatal(err)
	}
	local := NewPeer("here", relation.NewSchema("class", relation.Attr("t"), relation.IntAttr("s")))
	if err := n.AddPeer(local); err != nil {
		t.Fatal(err)
	}
	mp := glav.MustNew("r2l", "big", cq.MustParse("m(T, S) :- course(T, S)"),
		"here", cq.MustParse("m(T, S) :- class(T, S)"))
	if err := n.AddMapping(mp); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("q(T) :- class(T, S)")
	if _, err := n.Query(ctx, Request{Peer: "here", Query: q}); err == nil {
		t.Fatal("mid-fetch cancellation did not surface")
	}
	// A fresh context completes the fetch and sees every remote row.
	res, err := n.Answer("here", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 3*DefaultScanBatch {
		t.Fatalf("post-cancel answers = %d, want %d", res.Answers.Len(), 3*DefaultScanBatch)
	}
}

// TestAddRemotePeerUnknownName fails fast when the transport serves no
// such peer.
func TestAddRemotePeerUnknownName(t *testing.T) {
	n := NewNetwork()
	lb := NewLoopback()
	if _, err := n.AddRemotePeer(context.Background(), "ghost", lb); err == nil {
		t.Fatal("unknown remote peer accepted")
	}
	if n.NumPeers() != 0 {
		t.Fatal("failed AddRemotePeer left a peer behind")
	}
}

// TestRemoveRemotePeer drops the mirror and the remote registration;
// queries keep working over what remains.
func TestRemoveRemotePeer(t *testing.T) {
	n, _, _ := remoteChainNetwork(t)
	if err := n.RemovePeer("oxford"); err != nil {
		t.Fatal(err)
	}
	if len(n.remotes) != 1 {
		t.Fatalf("remotes after removal = %d, want 1", len(n.remotes))
	}
	res, err := n.Answer("berkeley", cq.MustParse("q(T) :- course(T, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 3 { // berkeley's 2 + mit's 1
		t.Fatalf("answers after oxford left = %d, want 3", res.Answers.Len())
	}
}
