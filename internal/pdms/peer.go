// Package pdms implements Piazza, REVERE's peer data management system
// (§3): an overlay of peers, each with its own schema and stored
// relations, connected by local GLAV mappings. Queries are posed in any
// peer's schema and answered over the transitive closure of mappings,
// with pruning heuristics over the space of reformulations, plus
// updategram propagation into materialized views placed at peers.
package pdms

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
	"repro/internal/store"
)

// Peer is one participant: a named schema plus locally stored relations.
// In REVERE a peer "may provide new content and services ... plus it may
// make use of the system by posing queries"; here every peer stores its
// own data in its own schema.
type Peer struct {
	Name   string
	Store  *relation.Database
	schema map[string]relation.Schema
	// nets are the networks this peer has joined; AddSchema notifies
	// them so cached reformulations derived from the old schema die.
	// Mutated only under the single-writer contract (AddPeer/RemovePeer/
	// AddSchema require external synchronization). A network is unlinked
	// by RemovePeer — a peer that outlives its network must be removed
	// from it, or the network (and its caches) stays reachable here.
	nets map[*Network]struct{}
	// schemaVer counts AddSchema calls. Transports serve it in the
	// peer's statistics fingerprint so a coordinator mirroring this peer
	// can tell, in one cheap round trip, that the relation set grew.
	// Atomic because a serving transport reads it concurrently with the
	// single writer.
	schemaVer atomic.Uint64
	// serveMu makes serving this peer over a transport safe against the
	// node's own mutations — exactly the live-freshness scenario the
	// wire protocol's fingerprint probe exists for. Insert, Delete, and
	// AddSchema take the write side; the Serving* accessors (what
	// Loopback and the TCP server read) take the read side. In-process
	// readers (queries through a Network) keep the pre-existing
	// contract: they are synchronized by the network's caches and
	// fingerprints, not by this lock.
	serveMu sync.RWMutex
	// persist, when non-nil, is the durable snapshot+WAL store backing
	// Store: mutations through Insert/Delete/AddSchema are logged to it
	// under serveMu, and ServingDelta serves catch-up records from its
	// resident log. Nil for ordinary in-memory peers. See OpenDurablePeer.
	persist *store.Store
	// feeds are the live push subscriptions fanning this peer's change
	// records out (FeedSubscribe registers them). Mutated and iterated
	// only under serveMu's write side, so commit-time fan-out needs no
	// extra lock; feeds found closed are dropped lazily. Nil until the
	// first subscription.
	feeds map[*ChangeFeed]struct{}
}

// NewPeer creates a peer with the given relation schemas; stored
// relations start empty.
func NewPeer(name string, schemas ...relation.Schema) *Peer {
	p := &Peer{Name: name, Store: relation.NewDatabase(),
		schema: make(map[string]relation.Schema), nets: make(map[*Network]struct{})}
	for _, s := range schemas {
		p.schema[s.Name] = s
		p.Store.Put(relation.New(s))
	}
	return p
}

// OpenDurablePeer creates a peer backed by the snapshot+WAL store rooted
// at dir, recovering whatever state a previous incarnation persisted
// there: relations come back with their exact (version, rows)
// fingerprints, so remote mirrors that synced before the restart see
// nothing to re-fetch. Schemas already recovered from the store are kept
// as-is; schemas in the argument list that the store does not know yet
// are added (and logged) — so the same call serves both a fresh start
// and a restart. Mutations through Insert, Delete, and AddSchema are
// logged to the store; Checkpoint folds the log into a fresh snapshot,
// and ClosePersist releases the store on shutdown.
func OpenDurablePeer(name, dir string, schemas ...relation.Schema) (*Peer, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	p := &Peer{Name: name, Store: st.Database(),
		schema: make(map[string]relation.Schema), nets: make(map[*Network]struct{}),
		persist: st}
	p.schemaVer.Store(st.SchemaVersion())
	for _, r := range p.Store.Relations() {
		p.schema[r.Schema.Name] = r.Schema
	}
	for _, s := range schemas {
		if _, known := p.schema[s.Name]; known {
			continue
		}
		p.schema[s.Name] = s
		p.Store.Put(relation.New(s))
		ver := p.schemaVer.Add(1)
		if err := st.Append(relation.ChangeRecord{Op: relation.ChangeSchema,
			Rel: s.Name, Ver: ver, Schema: s}); err != nil {
			st.Close()
			return nil, err
		}
	}
	return p, nil
}

// Persist returns the durable store backing this peer, or nil for an
// ordinary in-memory peer. Callers use it to inspect recovery counters
// (Recovered), durability health (Err), or to opt into fsync-per-record
// appends (SyncAppend).
func (p *Peer) Persist() *store.Store { return p.persist }

// Checkpoint folds the durable peer's change log into a fresh snapshot,
// under the serving lock so the snapshot captures a consistent database.
// A no-op (nil) on an in-memory peer.
func (p *Peer) Checkpoint() error {
	if p.persist == nil {
		return nil
	}
	p.serveMu.Lock()
	defer p.serveMu.Unlock()
	return p.persist.Checkpoint()
}

// ClosePersist closes the durable store (a no-op on an in-memory peer).
// The snapshot stays as the last Checkpoint wrote it; callers wanting an
// empty log on the next start should Checkpoint first.
func (p *Peer) ClosePersist() error {
	if p.persist == nil {
		return nil
	}
	return p.persist.Close()
}

// ServingDelta returns, under the serving lock, the change records of
// rel with version > since — the Delta response a transport sends to a
// mirror catching up from a known fingerprint. ok is false when the
// catch-up cannot be served: the peer is not durable, or a checkpoint
// already folded the requested range into the snapshot; the caller falls
// back to a full scan.
func (p *Peer) ServingDelta(rel string, since uint64) (recs []relation.ChangeRecord, ok bool) {
	if p.persist == nil {
		return nil, false
	}
	p.serveMu.RLock()
	defer p.serveMu.RUnlock()
	if p.Store.Get(rel) == nil {
		return nil, false // unknown relation: never claim an empty delta covers it
	}
	return p.persist.Since(rel, since)
}

// AddSchema registers one more relation in the peer's schema. Networks
// the peer has joined treat this as a topology change: reformulations
// cached against the old schema are invalidated. On a durable peer the
// addition is logged; a log failure poisons the store (Persist().Err())
// rather than failing this call.
func (p *Peer) AddSchema(s relation.Schema) {
	p.serveMu.Lock()
	p.schema[s.Name] = s
	if p.Store.Get(s.Name) == nil {
		p.Store.Put(relation.New(s))
	}
	ver := p.schemaVer.Add(1)
	rec := relation.ChangeRecord{Op: relation.ChangeSchema, Rel: s.Name, Ver: ver, Schema: s}
	p.fanout(rec)
	if p.persist != nil {
		p.persist.Append(rec)
	}
	p.serveMu.Unlock()
	for n := range p.nets {
		n.bumpTopology()
	}
}

// SchemaVersion returns how many times AddSchema has been called — the
// schema-growth counter a transport publishes so remote mirrors notice
// new relations without diffing schema lists.
func (p *Peer) SchemaVersion() uint64 { return p.schemaVer.Load() }

// HasRelation reports whether the peer's schema includes rel.
func (p *Peer) HasRelation(rel string) bool {
	_, ok := p.schema[rel]
	return ok
}

// Schema returns the schema of rel (zero Schema if absent).
func (p *Peer) Schema(rel string) relation.Schema { return p.schema[rel] }

// RelationNames returns the peer's relation names, sorted.
func (p *Peer) RelationNames() []string {
	out := make([]string, 0, len(p.schema))
	for n := range p.schema {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert stores a tuple locally. It is safe against concurrent serving
// of this peer over a transport (not against concurrent in-process
// readers, which keep the single-writer contract). On a durable peer
// the insert is additionally logged to the write-ahead log before
// returning; a log failure is the call's error (the tuple is in memory
// but not durable).
func (p *Peer) Insert(rel string, t relation.Tuple) error {
	if !p.HasRelation(rel) {
		return fmt.Errorf("pdms: peer %s has no relation %q", p.Name, rel)
	}
	p.serveMu.Lock()
	defer p.serveMu.Unlock()
	if err := p.Store.Insert(rel, t); err != nil {
		return err
	}
	if p.persist != nil || len(p.feeds) > 0 {
		r := p.Store.Get(rel)
		rec := relation.ChangeRecord{Op: relation.ChangeInsert,
			Rel: rel, Ver: r.Version(), Rows: r.Len(), Tuple: t}
		p.fanout(rec)
		if p.persist != nil {
			return p.persist.Append(rec)
		}
	}
	return nil
}

// Delete removes every stored tuple of rel equal to t, reporting how
// many were removed. Like Insert it is safe against concurrent serving,
// and on a durable peer an effective delete (removed > 0) is logged.
func (p *Peer) Delete(rel string, t relation.Tuple) (int, error) {
	if !p.HasRelation(rel) {
		return 0, fmt.Errorf("pdms: peer %s has no relation %q", p.Name, rel)
	}
	p.serveMu.Lock()
	defer p.serveMu.Unlock()
	r := p.Store.Get(rel)
	removed := r.Delete(t)
	if removed > 0 && (p.persist != nil || len(p.feeds) > 0) {
		rec := relation.ChangeRecord{Op: relation.ChangeDelete,
			Rel: rel, Ver: r.Version(), Rows: r.Len(), Tuple: t}
		p.fanout(rec)
		if p.persist != nil {
			return removed, p.persist.Append(rec)
		}
	}
	return removed, nil
}

// ServingState returns, under the serving lock, the peer's schema
// version and every stored relation's statistics fingerprint — the
// State response transports send.
func (p *Peer) ServingState() (uint64, []relation.NamedStats) {
	p.serveMu.RLock()
	defer p.serveMu.RUnlock()
	rels := p.Store.Relations()
	stats := make([]relation.NamedStats, 0, len(rels))
	for _, r := range rels {
		stats = append(stats, relation.NamedStats{Name: r.Schema.Name, Stats: r.Stats()})
	}
	return p.SchemaVersion(), stats
}

// ServingSchemas returns, under the serving lock, the peer's relation
// schemas in name order — the Schemas response transports send.
func (p *Peer) ServingSchemas() []relation.Schema {
	p.serveMu.RLock()
	defer p.serveMu.RUnlock()
	out := make([]relation.Schema, 0, len(p.schema))
	for _, name := range p.RelationNames() {
		out = append(out, p.schema[name])
	}
	return out
}

// ServingScan returns, under the serving lock, a snapshot of the named
// relation for a transport to stream (nil when the peer lacks it).
// Streaming from the snapshot needs no lock: later inserts never touch
// a snapshot already taken.
func (p *Peer) ServingScan(rel string) *relation.Relation {
	p.serveMu.RLock()
	defer p.serveMu.RUnlock()
	r := p.Store.Get(rel)
	if r == nil {
		return nil
	}
	return r.SnapshotAs(r.Schema.Name)
}

// Network is the PDMS overlay: peers plus the mapping graph. The arrows
// of the paper's Figure 2 are Mapping values here.
//
// Concurrency: read-side operations (Answer, LocalAnswer, GlobalDB,
// EstimateCost) may run concurrently with each other — the caches and
// shared snapshots they touch are synchronized. Mutations (AddPeer,
// AddMapping, RemovePeer, Peer.Insert, Publish, Subscribe) require
// external synchronization with respect to readers and each other, the
// same single-writer contract the underlying relations have.
type Network struct {
	peers    map[string]*Peer
	order    []string
	mappings []*glav.Mapping
	// byTargetRel indexes GAV-usable mappings by qualified target atom.
	byTargetRel map[string][]*glav.Mapping
	// gavDefs holds, aligned with byTargetRel, each mapping's unfolding
	// definition (qualified source body), precomputed once at
	// registration so reformulation doesn't re-qualify per expansion.
	gavDefs map[string][]cq.Query
	// byTargetPeer indexes all mappings by target peer (for LAV rewriting).
	byTargetPeer map[string][]*glav.Mapping
	subs         []*Subscription
	// subMu guards the placed materialized views' extents (and the subs
	// slice) against the push applier goroutine, which propagates pushed
	// deltas into them concurrently with the single-writer Publish path.
	// Lock order: remoteMu before subMu, never the reverse.
	subMu sync.Mutex

	// topoVersion counts topology changes (peers/mappings/schema
	// additions); the answer cache keys on it so rewritings never
	// outlive the mapping graph and schemas they were derived from.
	// Atomic so reformCacheKey reads it without taking mu.
	topoVersion atomic.Uint64

	mu sync.Mutex
	// globalDB caches the qualified snapshot built by GlobalDB, valid
	// while globalFP (per-relation identity+version+length) matches.
	globalDB *relation.Database
	globalFP []relFingerprint
	// reformCache memoizes Answer's reformulations (and their compiled
	// plans) per query; see Answer.
	reformCache map[reformKey]*reformEntry
	// reformInflight coalesces concurrent cold misses per cache key
	// (singleflight); entries remove themselves when the leader
	// finishes. See reformulateOnce.
	reformInflight map[reformKey]*reformCall
	// reformCalls counts reformulation searches actually run — cache
	// hits and coalesced waiters don't increment it (observability for
	// the singleflight path).
	reformCalls atomic.Uint64

	// remotes indexes the remote participants by name (a subset of
	// peers: each remote peer's local mirror is registered there too).
	// Like peers it is mutated only under the single-writer contract.
	// remoteMu makes the hidden mirror mutation inside the remote
	// query-prepare path — fingerprint sync, mirror AddSchema, replica
	// Put — safe against the documented read-side concurrency: Query
	// prepare takes the write side, and the other read-side entry
	// points that walk peer stores (GlobalDB, LocalQuery, EstimateCost)
	// take the read side, so concurrent readers stay safe exactly as
	// they are on an all-local network. Execution never holds it:
	// cursors run over immutable snapshots. All-local networks skip it
	// entirely.
	remotes  map[string]*RemotePeer
	remoteMu sync.RWMutex

	// remoteScans, remoteDeltas, and remoteShips count replica refreshes
	// by full scan, by delta catch-up, and by shipped sub-plan — the
	// counters RemoteSyncCounts exposes so harnesses can prove a rejoin
	// moved records, not relations, and that plan shipping actually ran.
	remoteScans  atomic.Uint64
	remoteDeltas atomic.Uint64
	remoteShips  atomic.Uint64

	// pushBatches, pushRecords, and pushGaps count the push-replication
	// traffic the subscription managers applied — delivered change
	// batches, records in them, and feed-overflow gaps (PushCounts).
	pushBatches atomic.Uint64
	pushRecords atomic.Uint64
	pushGaps    atomic.Uint64

	// DownProbeInterval is how often the background prober re-checks a
	// remote peer that graceful degradation marked down
	// (DefaultDownProbeInterval when zero). Set it before the first
	// query; it is read when a peer goes down.
	DownProbeInterval time.Duration
}

// relFingerprint identifies one stored relation's state at snapshot time.
type relFingerprint struct {
	rel *relation.Relation
	ver uint64
	n   int
}

// NewNetwork returns an empty overlay.
func NewNetwork() *Network {
	return &Network{
		peers:          make(map[string]*Peer),
		byTargetRel:    make(map[string][]*glav.Mapping),
		gavDefs:        make(map[string][]cq.Query),
		byTargetPeer:   make(map[string][]*glav.Mapping),
		reformCache:    make(map[reformKey]*reformEntry),
		reformInflight: make(map[reformKey]*reformCall),
	}
}

// AddPeer registers a peer; the name must be unused.
func (n *Network) AddPeer(p *Peer) error {
	if _, dup := n.peers[p.Name]; dup {
		return fmt.Errorf("pdms: duplicate peer %q", p.Name)
	}
	n.peers[p.Name] = p
	n.order = append(n.order, p.Name)
	p.nets[n] = struct{}{}
	n.bumpTopology()
	return nil
}

// bumpTopology records a peer/mapping/schema change, invalidating
// cached reformulations.
func (n *Network) bumpTopology() {
	n.topoVersion.Add(1)
	n.mu.Lock()
	if len(n.reformCache) > 0 {
		n.reformCache = make(map[reformKey]*reformEntry)
	}
	n.mu.Unlock()
}

// InvalidateCaches drops every cached reformulation, compiled plan,
// global snapshot, memoized containment verdict, and remote replica
// fingerprint (so the next query re-fetches the remote relations it
// references). Topology and data changes — local or observed remotely
// through the per-query fingerprint sync — invalidate automatically;
// this exists for out-of-band situations (and for benchmarking the
// cold path).
func (n *Network) InvalidateCaches() {
	n.topoVersion.Add(1)
	n.mu.Lock()
	n.reformCache = make(map[reformKey]*reformEntry)
	n.globalDB, n.globalFP = nil, nil
	n.mu.Unlock()
	n.remoteMu.Lock()
	n.invalidateRemotesLocked()
	n.remoteMu.Unlock()
	resetContainCache()
}

// gavDef builds the unfolding definition for a GAV mapping: the target
// atom's predicate defined by the mapping's qualified source body.
func gavDef(key string, m *glav.Mapping) cq.Query {
	return cq.Query{
		HeadPred: key,
		HeadVars: m.SrcQ.HeadVars,
		Body:     glav.Qualify(m.SrcQ, m.SrcPeer).Body,
	}
}

// Peer returns the named peer, or nil.
func (n *Network) Peer(name string) *Peer { return n.peers[name] }

// PeerNames returns all peer names in registration order.
func (n *Network) PeerNames() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// NumPeers returns the number of peers.
func (n *Network) NumPeers() int { return len(n.peers) }

// NumMappings returns the number of mappings.
func (n *Network) NumMappings() int { return len(n.mappings) }

// AddMapping registers a mapping; both endpoints must exist and every
// predicate must belong to the respective peer's schema.
func (n *Network) AddMapping(m *glav.Mapping) error {
	src, tgt := n.peers[m.SrcPeer], n.peers[m.TgtPeer]
	if src == nil || tgt == nil {
		return fmt.Errorf("pdms: mapping %s references unknown peer", m.ID)
	}
	if err := checkMappingSide(m.ID, src, m.SrcQ); err != nil {
		return err
	}
	if err := checkMappingSide(m.ID, tgt, m.TgtQ); err != nil {
		return err
	}
	n.mappings = append(n.mappings, m)
	if m.IsGAV() {
		key := glav.QualifiedName(m.TgtPeer, m.TargetAtomPred())
		n.byTargetRel[key] = append(n.byTargetRel[key], m)
		n.gavDefs[key] = append(n.gavDefs[key], gavDef(key, m))
	}
	n.byTargetPeer[m.TgtPeer] = append(n.byTargetPeer[m.TgtPeer], m)
	n.bumpTopology()
	return nil
}

// checkMappingSide validates that every atom of one mapping side names a
// relation the peer has, with matching arity — catching authoring
// mistakes at registration rather than mid-reformulation.
func checkMappingSide(id string, p *Peer, q cq.Query) error {
	for _, a := range q.Body {
		if !p.HasRelation(a.Pred) {
			return fmt.Errorf("pdms: mapping %s: peer %s lacks relation %q", id, p.Name, a.Pred)
		}
		if want := p.Schema(a.Pred).Arity(); want != len(a.Args) {
			return fmt.Errorf("pdms: mapping %s: atom %s has %d args, %s.%s has arity %d",
				id, a, len(a.Args), p.Name, a.Pred, want)
		}
	}
	return nil
}

// Mappings returns all mappings.
func (n *Network) Mappings() []*glav.Mapping { return n.mappings }

// RemovePeer disconnects a peer: its storage, every mapping touching it,
// and every subscription it hosts disappear. Peer-to-peer systems let
// "every member ... join or leave at will" (§3); queries elsewhere keep
// working over whatever remains reachable.
func (n *Network) RemovePeer(name string) error {
	p, ok := n.peers[name]
	if !ok {
		return fmt.Errorf("pdms: unknown peer %q", name)
	}
	delete(p.nets, n)
	delete(n.peers, name)
	if rp := n.remotes[name]; rp != nil {
		rp.stopProber() // a down leaver must not keep a prober goroutine alive
		rp.stopPush()   // nor a push subscription manager
	}
	delete(n.remotes, name) // a remote leaver takes its mirror along; the transport stays caller-owned
	for i, pn := range n.order {
		if pn == name {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	kept := n.mappings[:0]
	for _, m := range n.mappings {
		if m.SrcPeer == name || m.TgtPeer == name {
			continue
		}
		kept = append(kept, m)
	}
	n.mappings = kept
	// Rebuild mapping indexes.
	n.byTargetRel = make(map[string][]*glav.Mapping)
	n.gavDefs = make(map[string][]cq.Query)
	n.byTargetPeer = make(map[string][]*glav.Mapping)
	for _, m := range n.mappings {
		if m.IsGAV() {
			key := glav.QualifiedName(m.TgtPeer, m.TargetAtomPred())
			n.byTargetRel[key] = append(n.byTargetRel[key], m)
			n.gavDefs[key] = append(n.gavDefs[key], gavDef(key, m))
		}
		n.byTargetPeer[m.TgtPeer] = append(n.byTargetPeer[m.TgtPeer], m)
	}
	n.bumpTopology()
	// Drop hosted subscriptions and subscriptions over its relations
	// (under subMu: a push applier may be fanning into them).
	n.subMu.Lock()
	defer n.subMu.Unlock()
	keptSubs := n.subs[:0]
	prefix := name + "."
	for _, sub := range n.subs {
		if sub.AtPeer == name {
			continue
		}
		mentions := false
		for _, pred := range sub.MV.View.Def.Predicates() {
			if len(pred) >= len(prefix) && pred[:len(prefix)] == prefix {
				mentions = true
				break
			}
		}
		if mentions {
			continue
		}
		keptSubs = append(keptSubs, sub)
	}
	n.subs = keptSubs
	return nil
}

// GlobalDB builds the qualified database: every peer's stored relation
// appears under "peer.rel". Reformulated queries are evaluated here,
// simulating the distributed execution of §3.1.2 in-process (remote
// peers appear through their locally mirrored replicas).
//
// The snapshot is cached: while no stored relation has been mutated
// (tracked by relation version counters), repeated calls return the
// same database, so hash indexes built by the query engine stay warm
// across queries. Any mutation yields a fresh snapshot on the next
// call; snapshots already handed out are never touched.
func (n *Network) GlobalDB() *relation.Database {
	if len(n.remotes) > 0 {
		n.remoteMu.RLock()
		defer n.remoteMu.RUnlock()
	}
	return n.globalSnapshot()
}

// globalSnapshot is GlobalDB without the remote read lock; callers on
// the remote query-prepare path already hold remoteMu.
func (n *Network) globalSnapshot() *relation.Database {
	fp := n.fingerprint()
	n.mu.Lock()
	if n.globalDB != nil && fingerprintsEqual(n.globalFP, fp) {
		db := n.globalDB
		n.mu.Unlock()
		return db
	}
	n.mu.Unlock()
	db := relation.NewDatabase()
	for _, name := range n.order {
		p := n.peers[name]
		for _, r := range p.Store.Relations() {
			db.Put(r.SnapshotAs(glav.QualifiedName(name, r.Schema.Name)))
		}
	}
	n.mu.Lock()
	n.globalDB, n.globalFP = db, fp
	n.mu.Unlock()
	return db
}

// fingerprint captures the identity, version and length of every stored
// relation, in deterministic peer/relation order. It runs on every
// query, so it allocates exactly once (sized up front).
func (n *Network) fingerprint() []relFingerprint {
	total := 0
	for _, name := range n.order {
		total += len(n.peers[name].Store.Relations())
	}
	fp := make([]relFingerprint, 0, total)
	for _, name := range n.order {
		for _, r := range n.peers[name].Store.Relations() {
			fp = append(fp, relFingerprint{rel: r, ver: r.Version(), n: r.Len()})
		}
	}
	return fp
}

func fingerprintsEqual(a, b []relFingerprint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MappingDegree returns, per peer, how many mappings touch it — used by
// the E3 mapping-effort experiment.
func (n *Network) MappingDegree() map[string]int {
	deg := make(map[string]int, len(n.peers))
	for _, m := range n.mappings {
		deg[m.SrcPeer]++
		deg[m.TgtPeer]++
	}
	return deg
}
