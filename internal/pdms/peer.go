// Package pdms implements Piazza, REVERE's peer data management system
// (§3): an overlay of peers, each with its own schema and stored
// relations, connected by local GLAV mappings. Queries are posed in any
// peer's schema and answered over the transitive closure of mappings,
// with pruning heuristics over the space of reformulations, plus
// updategram propagation into materialized views placed at peers.
package pdms

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// Peer is one participant: a named schema plus locally stored relations.
// In REVERE a peer "may provide new content and services ... plus it may
// make use of the system by posing queries"; here every peer stores its
// own data in its own schema.
type Peer struct {
	Name   string
	Store  *relation.Database
	schema map[string]relation.Schema
}

// NewPeer creates a peer with the given relation schemas; stored
// relations start empty.
func NewPeer(name string, schemas ...relation.Schema) *Peer {
	p := &Peer{Name: name, Store: relation.NewDatabase(), schema: make(map[string]relation.Schema)}
	for _, s := range schemas {
		p.schema[s.Name] = s
		p.Store.Put(relation.New(s))
	}
	return p
}

// AddSchema registers one more relation in the peer's schema.
func (p *Peer) AddSchema(s relation.Schema) {
	p.schema[s.Name] = s
	if p.Store.Get(s.Name) == nil {
		p.Store.Put(relation.New(s))
	}
}

// HasRelation reports whether the peer's schema includes rel.
func (p *Peer) HasRelation(rel string) bool {
	_, ok := p.schema[rel]
	return ok
}

// Schema returns the schema of rel (zero Schema if absent).
func (p *Peer) Schema(rel string) relation.Schema { return p.schema[rel] }

// RelationNames returns the peer's relation names, sorted.
func (p *Peer) RelationNames() []string {
	out := make([]string, 0, len(p.schema))
	for n := range p.schema {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert stores a tuple locally.
func (p *Peer) Insert(rel string, t relation.Tuple) error {
	if !p.HasRelation(rel) {
		return fmt.Errorf("pdms: peer %s has no relation %q", p.Name, rel)
	}
	return p.Store.Insert(rel, t)
}

// Network is the PDMS overlay: peers plus the mapping graph. The arrows
// of the paper's Figure 2 are Mapping values here.
type Network struct {
	peers    map[string]*Peer
	order    []string
	mappings []*glav.Mapping
	// byTargetRel indexes GAV-usable mappings by qualified target atom.
	byTargetRel map[string][]*glav.Mapping
	// byTargetPeer indexes all mappings by target peer (for LAV rewriting).
	byTargetPeer map[string][]*glav.Mapping
	subs         []*Subscription
}

// NewNetwork returns an empty overlay.
func NewNetwork() *Network {
	return &Network{
		peers:        make(map[string]*Peer),
		byTargetRel:  make(map[string][]*glav.Mapping),
		byTargetPeer: make(map[string][]*glav.Mapping),
	}
}

// AddPeer registers a peer; the name must be unused.
func (n *Network) AddPeer(p *Peer) error {
	if _, dup := n.peers[p.Name]; dup {
		return fmt.Errorf("pdms: duplicate peer %q", p.Name)
	}
	n.peers[p.Name] = p
	n.order = append(n.order, p.Name)
	return nil
}

// Peer returns the named peer, or nil.
func (n *Network) Peer(name string) *Peer { return n.peers[name] }

// PeerNames returns all peer names in registration order.
func (n *Network) PeerNames() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// NumPeers returns the number of peers.
func (n *Network) NumPeers() int { return len(n.peers) }

// NumMappings returns the number of mappings.
func (n *Network) NumMappings() int { return len(n.mappings) }

// AddMapping registers a mapping; both endpoints must exist and every
// predicate must belong to the respective peer's schema.
func (n *Network) AddMapping(m *glav.Mapping) error {
	src, tgt := n.peers[m.SrcPeer], n.peers[m.TgtPeer]
	if src == nil || tgt == nil {
		return fmt.Errorf("pdms: mapping %s references unknown peer", m.ID)
	}
	if err := checkMappingSide(m.ID, src, m.SrcQ); err != nil {
		return err
	}
	if err := checkMappingSide(m.ID, tgt, m.TgtQ); err != nil {
		return err
	}
	n.mappings = append(n.mappings, m)
	if m.IsGAV() {
		key := glav.QualifiedName(m.TgtPeer, m.TargetAtomPred())
		n.byTargetRel[key] = append(n.byTargetRel[key], m)
	}
	n.byTargetPeer[m.TgtPeer] = append(n.byTargetPeer[m.TgtPeer], m)
	return nil
}

// checkMappingSide validates that every atom of one mapping side names a
// relation the peer has, with matching arity — catching authoring
// mistakes at registration rather than mid-reformulation.
func checkMappingSide(id string, p *Peer, q cq.Query) error {
	for _, a := range q.Body {
		if !p.HasRelation(a.Pred) {
			return fmt.Errorf("pdms: mapping %s: peer %s lacks relation %q", id, p.Name, a.Pred)
		}
		if want := p.Schema(a.Pred).Arity(); want != len(a.Args) {
			return fmt.Errorf("pdms: mapping %s: atom %s has %d args, %s.%s has arity %d",
				id, a, len(a.Args), p.Name, a.Pred, want)
		}
	}
	return nil
}

// Mappings returns all mappings.
func (n *Network) Mappings() []*glav.Mapping { return n.mappings }

// RemovePeer disconnects a peer: its storage, every mapping touching it,
// and every subscription it hosts disappear. Peer-to-peer systems let
// "every member ... join or leave at will" (§3); queries elsewhere keep
// working over whatever remains reachable.
func (n *Network) RemovePeer(name string) error {
	if _, ok := n.peers[name]; !ok {
		return fmt.Errorf("pdms: unknown peer %q", name)
	}
	delete(n.peers, name)
	for i, pn := range n.order {
		if pn == name {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	kept := n.mappings[:0]
	for _, m := range n.mappings {
		if m.SrcPeer == name || m.TgtPeer == name {
			continue
		}
		kept = append(kept, m)
	}
	n.mappings = kept
	// Rebuild mapping indexes.
	n.byTargetRel = make(map[string][]*glav.Mapping)
	n.byTargetPeer = make(map[string][]*glav.Mapping)
	for _, m := range n.mappings {
		if m.IsGAV() {
			key := glav.QualifiedName(m.TgtPeer, m.TargetAtomPred())
			n.byTargetRel[key] = append(n.byTargetRel[key], m)
		}
		n.byTargetPeer[m.TgtPeer] = append(n.byTargetPeer[m.TgtPeer], m)
	}
	// Drop hosted subscriptions and subscriptions over its relations.
	keptSubs := n.subs[:0]
	prefix := name + "."
	for _, sub := range n.subs {
		if sub.AtPeer == name {
			continue
		}
		mentions := false
		for _, pred := range sub.MV.View.Def.Predicates() {
			if len(pred) >= len(prefix) && pred[:len(prefix)] == prefix {
				mentions = true
				break
			}
		}
		if mentions {
			continue
		}
		keptSubs = append(keptSubs, sub)
	}
	n.subs = keptSubs
	return nil
}

// GlobalDB builds the qualified database: every peer's stored relation
// appears under "peer.rel". Reformulated queries are evaluated here,
// simulating the distributed execution of §3.1.2 in-process.
func (n *Network) GlobalDB() *relation.Database {
	db := relation.NewDatabase()
	for _, name := range n.order {
		p := n.peers[name]
		for _, r := range p.Store.Relations() {
			q := relation.New(relation.Schema{
				Name:  glav.QualifiedName(name, r.Schema.Name),
				Attrs: r.Schema.Attrs,
			})
			for _, row := range r.Rows() {
				if err := q.Insert(row); err != nil {
					panic(err) // same schema: cannot happen
				}
			}
			db.Put(q)
		}
	}
	return db
}

// MappingDegree returns, per peer, how many mappings touch it — used by
// the E3 mapping-effort experiment.
func (n *Network) MappingDegree() map[string]int {
	deg := make(map[string]int, len(n.peers))
	for _, m := range n.mappings {
		deg[m.SrcPeer]++
		deg[m.TgtPeer]++
	}
	return deg
}
