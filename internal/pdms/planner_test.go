package pdms

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
)

// plannerDB builds a two-relation database with the given cardinalities
// for the plan-cache tests.
func plannerDB(bigRows, smallRows int) *relation.Database {
	db := relation.NewDatabase()
	big := relation.New(relation.NewSchema("big", relation.Attr("x"), relation.Attr("y")))
	small := relation.New(relation.NewSchema("small", relation.Attr("x"), relation.Attr("z")))
	for i := 0; i < bigRows; i++ {
		big.MustInsert(relation.SV(fmt.Sprintf("k%d", i)), relation.SV(fmt.Sprintf("y%d", i)))
	}
	for i := 0; i < smallRows; i++ {
		small.MustInsert(relation.SV(fmt.Sprintf("k%d", i)), relation.SV(fmt.Sprintf("z%d", i)))
	}
	db.Put(big)
	db.Put(small)
	return db
}

// TestPlansForStatsVersionInvalidation white-boxes the plan cache: the
// same database pointer returns the cached plans while its statistics
// fingerprint is unchanged, and recompiles when data mutates behind it.
func TestPlansForStatsVersionInvalidation(t *testing.T) {
	db := plannerDB(200, 5)
	q := cq.MustParse("q(Y, Z) :- big(X, Y), small(X, Z)")
	e := &reformEntry{rws: []cq.Query{q}}

	p1, err := e.plansFor(db)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.plansFor(db)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0] != p2[0] {
		t.Fatal("unchanged stats recompiled the plan instead of reusing it")
	}

	// Flip the cardinalities behind the same database pointer: small
	// becomes the big side, so a reused plan would keep a stale order.
	small := db.Get("small")
	for i := 0; i < 4000; i++ {
		small.MustInsert(relation.SV(fmt.Sprintf("n%d", i)), relation.SV("z"))
	}
	p3, err := e.plansFor(db)
	if err != nil {
		t.Fatal(err)
	}
	if p3[0] == p1[0] {
		t.Fatal("stats change under the cached database did not recompile the plan")
	}
}

// TestServedPlanTracksDataSkew runs the whole serving pipeline: the
// first answer caches plans ordered for the initial cardinalities;
// after the data skews the other way, the next request plans from the
// fresh statistics and flips the driver atom.
func TestServedPlanTracksDataSkew(t *testing.T) {
	p := NewPeer("uni",
		relation.NewSchema("big", relation.Attr("x"), relation.Attr("y")),
		relation.NewSchema("small", relation.Attr("x"), relation.Attr("z")))
	n := NewNetwork()
	if err := n.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := p.Insert("big", relation.Tuple{
			relation.SV(fmt.Sprintf("k%d", i)), relation.SV(fmt.Sprintf("y%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := p.Insert("small", relation.Tuple{
			relation.SV(fmt.Sprintf("k%d", i)), relation.SV(fmt.Sprintf("z%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{Peer: "uni", Query: cq.MustParse("q(Y, Z) :- big(X, Y), small(X, Z)")}

	explain := func() string {
		cur, err := n.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		out := cur.Explain()
		if _, err := cur.Materialize(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	before := explain()
	if !strings.Contains(before, "1. uni.small") {
		t.Fatalf("initial plan does not drive from the 5-row relation:\n%s", before)
	}

	// Skew the other way: small outgrows big by an order of magnitude.
	for i := 0; i < 6000; i++ {
		if err := p.Insert("small", relation.Tuple{
			relation.SV(fmt.Sprintf("k%d", i%300)), relation.SV(fmt.Sprintf("zz%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	after := explain()
	if !strings.Contains(after, "1. uni.big") {
		t.Fatalf("plan did not flip its driver after the skew inverted:\n%s", after)
	}
}
