package pdms

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/relation"
)

// This file defines the transport seam of the distributed PDMS: the
// Transport interface a coordinator uses to reach a peer that lives
// elsewhere, and Loopback, the in-process reference implementation.
// Loopback deliberately round-trips every schema, statistics
// fingerprint, and tuple batch through the wire codecs of
// internal/relation, so the differential test axis is exactly one
// variable long: in-process vs loopback isolates the encoding, and
// loopback vs TCP isolates the sockets.

// Transport is how a Network reaches a peer hosted on another node. The
// three read operations mirror the wire protocol's request kinds
// (PROTOCOL.md): a cheap statistics fingerprint used to decide whether
// anything must move, the peer's relation schemas, and a streaming scan
// of one relation's tuples. Implementations must be safe for concurrent
// use — the fetch path scans several relations at once.
type Transport interface {
	// State returns the peer's current statistics fingerprint: its
	// schema version plus, per relation, row count, mutation version,
	// and distinct-value estimates. It is the per-query freshness probe,
	// so it should be cheap.
	State(ctx context.Context, peer string) (PeerState, error)
	// Schemas returns the peer's relation schemas.
	Schemas(ctx context.Context, peer string) ([]relation.Schema, error)
	// Scan streams the named relation's tuples in batches, calling
	// deliver for each batch in order. A deliver error or ctx
	// cancellation aborts the scan with that error.
	Scan(ctx context.Context, peer, rel string, deliver func([]relation.Tuple) error) error
	// Close releases the transport's resources (connections, pools).
	Close() error
}

// DeltaTransport is the optional catch-up extension of Transport: a
// transport that can ship the change records of one relation since a
// known mutation version, so a mirror holding a replica at that version
// applies a handful of records instead of re-scanning the relation.
// ok=false (with a nil error) means the serving side cannot cover the
// range — the peer is not durable, a checkpoint discarded the records,
// or the transport predates the Delta request — and the caller falls
// back to a full scan. Transports that cannot ever serve deltas simply
// don't implement the interface.
type DeltaTransport interface {
	Transport
	// Delta returns rel's change records with version > since, in log
	// order. The final record's fingerprint may be newer than the State
	// probe that motivated the call — the mirror lands on the fresher
	// state, which is fine.
	Delta(ctx context.Context, peer, rel string, since uint64) (recs []relation.ChangeRecord, ok bool, err error)
}

// PeerState is a remote peer's statistics fingerprint: everything a
// coordinator needs to decide whether its cached replicas and plans are
// still current, in one round trip.
type PeerState struct {
	// SchemaVersion counts the peer's schema additions; a change means
	// the relation set grew and cached reformulations may be stale.
	SchemaVersion uint64
	// Relations carries per-relation row counts, mutation versions, and
	// per-column distinct estimates, in name order.
	Relations []relation.NamedStats
}

// DefaultScanBatch is how many tuples a transport packs per tuple-batch
// frame when streaming a scan. Large enough to amortize framing, small
// enough that cancellation mid-scan is prompt.
const DefaultScanBatch = 256

// Loopback serves a set of local peers through the Transport interface
// without sockets. Every payload still round-trips through the wire
// codecs, so a loopback network exercises the full encoding path — it
// is the differential reference between in-process execution and the
// TCP transport. The zero value is unusable; use NewLoopback.
type Loopback struct {
	// FeedQueue bounds each push subscription's change feed
	// (DefaultFeedQueue when zero). Tests shrink it to force slow-
	// subscriber gaps without thousands of mutations.
	FeedQueue int

	peers     map[string]*Peer
	scans     atomic.Uint64
	deltas    atomic.Uint64
	plans     atomic.Uint64
	states    atomic.Uint64
	wireBytes atomic.Uint64
}

// NewLoopback returns a loopback transport serving the given peers.
func NewLoopback(peers ...*Peer) *Loopback {
	l := &Loopback{peers: make(map[string]*Peer, len(peers))}
	for _, p := range peers {
		l.peers[p.Name] = p
	}
	return l
}

// Scans returns how many relation scans the transport has served —
// observability for the fetch path's laziness (tests assert that warm
// queries move no tuples).
func (l *Loopback) Scans() uint64 { return l.scans.Load() }

// Deltas returns how many delta catch-ups the transport has served —
// the counterpart of Scans for the cheap path (tests assert a restarted
// durable peer's mirror caught up via deltas, not scans).
func (l *Loopback) Deltas() uint64 { return l.deltas.Load() }

// Plans returns how many shipped sub-plans the transport has executed —
// the counter differential tests use to assert the ship path actually
// ran (not silently fell back to mirroring).
func (l *Loopback) Plans() uint64 { return l.plans.Load() }

// States returns how many statistics-fingerprint probes the transport
// has served — the counter the push-fanout ledger bench uses to prove
// a live subscription answers watch iterations with zero State probes.
func (l *Loopback) States() uint64 { return l.states.Load() }

// WireBytes returns the total payload bytes the transport has moved
// across every operation — the loopback analogue of the TCP client's
// framed-byte counter, and what the ship-vs-mirror ≥10× byte assertion
// measures.
func (l *Loopback) WireBytes() uint64 { return l.wireBytes.Load() }

func (l *Loopback) peer(name string) (*Peer, error) {
	p := l.peers[name]
	if p == nil {
		return nil, &relation.WireError{Code: relation.ErrCodeUnknownPeer,
			Message: "loopback serves no peer " + name}
	}
	return p, nil
}

// State implements Transport, round-tripping the fingerprint through
// the stats frame codec.
func (l *Loopback) State(ctx context.Context, peer string) (PeerState, error) {
	if err := ctx.Err(); err != nil {
		return PeerState{}, err
	}
	p, err := l.peer(peer)
	if err != nil {
		return PeerState{}, err
	}
	l.states.Add(1)
	sv, stats := p.ServingState()
	enc := relation.EncodePeerStats(sv, stats)
	l.wireBytes.Add(uint64(len(enc)))
	sv, decoded, err := relation.DecodePeerStats(enc)
	if err != nil {
		return PeerState{}, fmt.Errorf("pdms: loopback stats round trip: %w", err)
	}
	return PeerState{SchemaVersion: sv, Relations: decoded}, nil
}

// Schemas implements Transport, round-tripping each schema through the
// schema frame codec.
func (l *Loopback) Schemas(ctx context.Context, peer string) ([]relation.Schema, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := l.peer(peer)
	if err != nil {
		return nil, err
	}
	var out []relation.Schema
	for _, schema := range p.ServingSchemas() {
		enc := relation.EncodeSchema(schema)
		l.wireBytes.Add(uint64(len(enc)))
		s, err := relation.DecodeSchema(enc)
		if err != nil {
			return nil, fmt.Errorf("pdms: loopback schema round trip: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Scan implements Transport: a snapshot of the relation's rows is cut
// into DefaultScanBatch-sized batches, each round-tripped through the
// tuple-batch frame codec, with cancellation checked between batches.
func (l *Loopback) Scan(ctx context.Context, peer, rel string, deliver func([]relation.Tuple) error) error {
	p, err := l.peer(peer)
	if err != nil {
		return err
	}
	r := p.ServingScan(rel)
	if r == nil {
		return &relation.WireError{Code: relation.ErrCodeUnknownRelation,
			Message: "peer " + peer + " has no relation " + rel}
	}
	l.scans.Add(1)
	rows := r.Rows()
	for len(rows) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := DefaultScanBatch
		if n > len(rows) {
			n = len(rows)
		}
		enc := relation.EncodeTupleBatch(rows[:n])
		l.wireBytes.Add(uint64(len(enc)))
		batch, err := relation.DecodeTupleBatch(enc)
		if err != nil {
			return fmt.Errorf("pdms: loopback batch round trip: %w", err)
		}
		if err := deliver(batch); err != nil {
			return err
		}
		rows = rows[n:]
	}
	return nil
}

// Delta implements DeltaTransport, round-tripping the records through
// the change-batch frame codec. ok is false when the served peer cannot
// cover the range from its resident log (not durable, or checkpointed
// past since).
func (l *Loopback) Delta(ctx context.Context, peer, rel string, since uint64) ([]relation.ChangeRecord, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	p, err := l.peer(peer)
	if err != nil {
		return nil, false, err
	}
	recs, ok := p.ServingDelta(rel, since)
	if !ok {
		return nil, false, nil
	}
	enc := relation.EncodeChangeBatch(recs)
	l.wireBytes.Add(uint64(len(enc)))
	decoded, err := relation.DecodeChangeBatch(enc)
	if err != nil {
		return nil, false, fmt.Errorf("pdms: loopback delta round trip: %w", err)
	}
	l.deltas.Add(1)
	return decoded, true, nil
}

// ExecPlan implements PlanTransport: the sub-plan round-trips through
// its wire codec, executes at the served peer under its serving lock,
// and each answer batch round-trips through the tuple-batch codec on
// the way back — so loopback plan shipping exercises exactly the bytes
// TCP would move, keeping the differential axis one variable long.
func (l *Loopback) ExecPlan(ctx context.Context, peer string, sp relation.SubPlan,
	deliver func([]relation.Tuple) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := l.peer(peer)
	if err != nil {
		return err
	}
	enc := relation.EncodeSubPlan(sp)
	l.wireBytes.Add(uint64(len(enc)))
	decoded, err := relation.DecodeSubPlan(enc)
	if err != nil {
		return fmt.Errorf("pdms: loopback subplan round trip: %w", err)
	}
	l.plans.Add(1)
	return p.ServingExecPlan(ctx, decoded, DefaultScanBatch,
		func(s relation.Schema) error {
			b := relation.EncodeSchema(s)
			l.wireBytes.Add(uint64(len(b)))
			_, derr := relation.DecodeSchema(b)
			return derr
		},
		func(batch []relation.Tuple) error {
			b := relation.EncodeTupleBatch(batch)
			l.wireBytes.Add(uint64(len(b)))
			rt, derr := relation.DecodeTupleBatch(b)
			if derr != nil {
				return fmt.Errorf("pdms: loopback batch round trip: %w", derr)
			}
			return deliver(rt)
		})
}

// Subscribe implements PushTransport: the since-list round-trips
// through its wire codec, the served peer registers a bounded change
// feed, the ack fingerprint round-trips through the stats codec, and
// every pushed batch round-trips through the change-batch codec — the
// same bytes the TCP push path moves. The call blocks draining the
// feed until ctx is cancelled, the feed gaps (ErrSubscriptionGap), or
// the served peer closes the feed.
func (l *Loopback) Subscribe(ctx context.Context, peer string, since map[string]uint64,
	ack func(PeerState) error, deliver func([]relation.ChangeRecord) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := l.peer(peer)
	if err != nil {
		return err
	}
	encSince := relation.EncodeSubscribeSince(sinceList(since))
	l.wireBytes.Add(uint64(len(encSince)))
	decSince, err := relation.DecodeSubscribeSince(encSince)
	if err != nil {
		return fmt.Errorf("pdms: loopback since round trip: %w", err)
	}
	sinceMap := make(map[string]uint64, len(decSince))
	for _, rv := range decSince {
		sinceMap[rv.Rel] = rv.Ver
	}
	max := l.FeedQueue
	if max <= 0 {
		max = DefaultFeedQueue
	}
	feed, sv, stats := p.FeedSubscribe(sinceMap, max)
	defer feed.Close()
	stop := context.AfterFunc(ctx, feed.Close)
	defer stop()
	encAck := relation.EncodePeerStats(sv, stats)
	l.wireBytes.Add(uint64(len(encAck)))
	sv, decStats, err := relation.DecodePeerStats(encAck)
	if err != nil {
		return fmt.Errorf("pdms: loopback stats round trip: %w", err)
	}
	if err := ack(PeerState{SchemaVersion: sv, Relations: decStats}); err != nil {
		return err
	}
	for {
		recs, err := feed.Next()
		if err != nil {
			if err == ErrFeedClosed {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			return err
		}
		enc := relation.EncodeChangeBatch(recs)
		l.wireBytes.Add(uint64(len(enc)))
		decoded, err := relation.DecodeChangeBatch(enc)
		if err != nil {
			return fmt.Errorf("pdms: loopback change batch round trip: %w", err)
		}
		if err := deliver(decoded); err != nil {
			return err
		}
	}
}

// sinceList renders a since map as the sorted slice the wire codec
// carries.
func sinceList(since map[string]uint64) []relation.RelVersion {
	out := make([]relation.RelVersion, 0, len(since))
	for rel, ver := range since {
		out = append(out, relation.RelVersion{Rel: rel, Ver: ver})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}

// compile-time proof the loopback is a PlanTransport.
var _ PlanTransport = (*Loopback)(nil)

// compile-time proof the loopback is a PushTransport.
var _ PushTransport = (*Loopback)(nil)

// Close implements Transport; a loopback holds no resources.
func (l *Loopback) Close() error { return nil }
