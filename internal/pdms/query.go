package pdms

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"time"

	"repro/internal/cq"
	"repro/internal/relation"
)

// This file is the request-scoped serving API: Network.Query reformulates
// once, compiles (or reuses cached) plans, and hands back a Cursor that
// streams deduplicated union tuples on demand. Nothing is materialized
// until the caller pulls; cancelling the request context aborts both the
// reformulation search and the join trees; Limit stops the whole union
// after N distinct answers. Answer/LocalAnswer are materializing wrappers
// over this path.

// Request bundles everything one query-answering call needs.
type Request struct {
	// Peer names the peer in whose schema Query is posed.
	Peer string
	// Query is the conjunctive query, in Peer's vocabulary.
	Query cq.Query
	// Reform tunes the reformulation search.
	Reform ReformOptions
	// Limit stops the cursor after this many distinct answers
	// (0 = stream every answer). The engine aborts the remaining join
	// trees the moment the limit is reached, so existence queries
	// (Limit=1) cost a tiny fraction of full materialization.
	Limit int
	// Parallelism is the number of rewriting branches executed
	// concurrently by the engine: 0 = auto (GOMAXPROCS when the union
	// is heavy enough), 1 = sequential, N > 1 = force N workers. See
	// cq.ExecOptions.Parallelism. Answer order becomes
	// nondeterministic above 1; the answer set and Limit exactness do
	// not change.
	Parallelism int
	// Retry governs the remote operations of this request's preparation
	// (freshness probes, schema syncs, relation scans). The zero value
	// keeps the pre-policy behavior: one attempt per operation, no
	// per-attempt timeout, unlimited budget. See DefaultRetryPolicy for
	// a serving-path configuration.
	Retry RetryPolicy
	// AllowStale opts into graceful degradation: when a remote peer
	// cannot be freshened within the retry policy (unreachable, hung,
	// or out of budget), the request serves that peer's last-good
	// mirror snapshot instead of failing, reports it via
	// Cursor.Degraded, and marks the peer down — stale-tolerant queries
	// skip probing it entirely while a background prober watches for
	// its return (cadence: Network.DownProbeInterval). Off by default:
	// unreachable peers fail the query with a typed ErrPeerUnreachable
	// error rather than silently serving stale replicas as fresh.
	AllowStale bool
	// Ship selects the plan-shipping tier for stale remote relations:
	// ShipNever (the zero value — mirror exactly as before), ShipAuto
	// (the statistics model decides per relation), or ShipAlways (ship
	// every eligible relation). Which path each relation actually took
	// is reported by Cursor.SyncPaths.
	Ship ShipMode
	// ShipRowBudget caps a shipped sub-plan's distinct answers
	// (DefaultShipRowBudget when 0, unlimited when negative). A plan
	// that overflows its budget is not truncated — the serving peer
	// fails it typed (ErrPlanBudget) and the coordinator falls back to
	// mirroring the relation. When Limit is set, the effective budget
	// is further clamped to Limit × shipLimitFactor, so an existence
	// query never licenses a serving peer to stream a huge sub-plan
	// result; the fail-not-truncate contract keeps the clamp sound.
	ShipRowBudget int
}

// Cursor streams the deduplicated answers of one Query call. Tuples are
// pulled on demand: the union's join trees only run as far as the
// consumer asks. The reformulation statistics are available immediately;
// ExecTime is populated once the cursor is drained or closed. A Cursor
// is bound to the database snapshot current at Query time and is not
// safe for concurrent use (distinct Cursors are independent).
//
// Usage:
//
//	cur, err := net.Query(ctx, pdms.Request{Peer: "uw", Query: q})
//	...
//	defer cur.Close()
//	for cur.Next() {
//	    use(cur.Tuple())
//	}
//	if err := cur.Err(); err != nil { ... }
type Cursor struct {
	ctx    context.Context
	plans  []*cq.Plan
	schema relation.Schema
	limit  int
	par    int

	rewritings []cq.Query
	stats      ReformStats
	kernels    cq.KernelCounts
	reformTime time.Duration
	degraded   []DegradedPeer
	retries    int
	syncPaths  []SyncPath

	execStart time.Time
	execTime  time.Duration

	next    func() (relation.Tuple, error, bool)
	stop    func()
	cur     relation.Tuple
	err     error
	started bool
	closed  bool
	drained bool
}

// errCursorClosed reports Materialize on a cursor Closed mid-stream —
// partial consumption must not masquerade as an empty answer set.
var errCursorClosed = errors.New("pdms: cursor closed before being drained")

// Schema returns the schema answer tuples conform to. It is available
// before the first Next call, and identical whether or not the query
// has any answers.
func (c *Cursor) Schema() relation.Schema { return c.schema }

// Rewritings returns the reformulations the cursor unions over.
func (c *Cursor) Rewritings() []cq.Query {
	out := make([]cq.Query, len(c.rewritings))
	copy(out, c.rewritings)
	return out
}

// Stats returns the reformulation statistics (available immediately).
// The execution-side counters — BatchBranches and FallbackBranches —
// fill in as branches run; read them after draining the cursor for
// final values.
func (c *Cursor) Stats() ReformStats {
	s := c.stats
	s.BatchBranches = c.kernels.Batch()
	s.FallbackBranches = c.kernels.Fallback()
	return s
}

// Degraded reports the remote peers this request could not freshen and
// therefore serves from their last-good mirror snapshots, in peer-name
// order. It is empty unless the request set AllowStale and a peer was
// actually unreachable; a non-empty result means the answer set may
// omit or predate those peers' latest data. Available immediately.
func (c *Cursor) Degraded() []DegradedPeer {
	out := make([]DegradedPeer, len(c.degraded))
	copy(out, c.degraded)
	return out
}

// Retries reports how many remote-operation retries request
// preparation spent under the request's RetryPolicy (0 on an all-local
// network or a clean prepare). Available immediately.
func (c *Cursor) Retries() int { return c.retries }

// SyncPaths reports, per remote relation this request had to refresh,
// which path the refresh took — "ship" (remote sub-plan execution),
// "push" (replica already current from a live push subscription),
// "delta" (change-record catch-up), or "scan" (full mirror re-scan) —
// in (peer, relation) order. Empty when every referenced replica was
// already current. Available immediately.
func (c *Cursor) SyncPaths() []SyncPath {
	out := make([]SyncPath, len(c.syncPaths))
	copy(out, c.syncPaths)
	return out
}

// Explain renders the compiled execution plan of every rewriting branch
// — the join order the planner chose, each atom's access path, the cost
// estimates, and which kernel the branch would ride (batch when every
// relation it reads has a current dictionary encoding, else the
// tuple-at-a-time fallback) — without executing anything. Branches
// print in reformulation order; limited executions run them
// cheapest-first.
func (c *Cursor) Explain() string {
	if len(c.plans) == 0 {
		return "no rewriting reaches stored data\n"
	}
	var b strings.Builder
	total := 0.0
	for _, p := range c.plans {
		total += p.EstimatedCost()
	}
	fmt.Fprintf(&b, "union of %d branch(es), est total cost %.1f rows\n",
		len(c.plans), total)
	for i, p := range c.plans {
		kernel := "tuple"
		if p.BatchEligible() {
			kernel = "batch"
		}
		fmt.Fprintf(&b, "branch %d [kernel=%s]: %s", i, kernel, p.Explain())
	}
	for _, sp := range c.syncPaths {
		fmt.Fprintf(&b, "sync %s.%s via %s\n", sp.Peer, sp.Rel, sp.Path)
	}
	return b.String()
}

// ReformTime returns how long request preparation took — reformulation
// plus, on a cold cursor, compiling the rewritings' plans (available
// immediately).
func (c *Cursor) ReformTime() time.Duration { return c.reformTime }

// ExecTime returns how long execution took; it is zero until the cursor
// has been drained or closed.
func (c *Cursor) ExecTime() time.Duration { return c.execTime }

// Next advances to the next distinct answer, reporting whether one is
// available. It returns false when the answers are exhausted, the limit
// is reached, the context is cancelled, or the cursor is closed; Err
// distinguishes failure from exhaustion.
func (c *Cursor) Next() bool {
	if c.closed || c.err != nil {
		return false
	}
	if !c.started {
		c.start()
	}
	t, err, ok := c.next()
	if !ok || err != nil {
		c.cur = nil
		c.err = err
		if err == nil {
			c.drained = true // exhausted (or limit reached), not aborted
		}
		c.finish()
		return false
	}
	c.cur = t
	return true
}

// Tuple returns the answer Next advanced to. The tuple is owned by the
// caller; the engine never mutates it.
func (c *Cursor) Tuple() relation.Tuple { return c.cur }

// Err returns the error that stopped the cursor, if any. Exhaustion and
// reaching the limit are not errors; cancellation surfaces as ctx.Err().
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's execution state; it is idempotent and
// returns the same error Err does. Closing mid-stream aborts the
// remaining join trees.
func (c *Cursor) Close() error {
	c.finish()
	c.cur = nil
	return c.err
}

// start lazily builds the pull iterator over the streaming union; the
// coroutine only exists between start and finish.
func (c *Cursor) start() {
	c.started = true
	c.execStart = time.Now()
	if len(c.plans) == 0 {
		c.next = func() (relation.Tuple, error, bool) { return nil, nil, false }
		c.stop = func() {}
		return
	}
	c.next, c.stop = iter.Pull2(cq.UnionTuples(c.ctx, c.plans,
		cq.ExecOptions{Limit: c.limit, Parallelism: c.par, Kernels: &c.kernels}))
}

// finish records execution time and stops the pull iterator.
func (c *Cursor) finish() {
	if c.closed {
		return
	}
	c.closed = true
	if c.started {
		c.stop()
		c.execTime = time.Since(c.execStart)
	}
}

// Materialize drains the cursor into a relation and closes it. On a
// fresh cursor it executes push-style — no pull coroutine — which is the
// path Answer uses; on a partially consumed cursor it drains the rest.
// On a cursor already drained without error it returns an empty
// relation of the cursor's schema (Err() == nil is not a failure
// state); a failed cursor returns its error, and a cursor Closed
// mid-stream returns errCursorClosed — partial consumption is not an
// empty answer set.
func (c *Cursor) Materialize() (*relation.Relation, error) {
	if c.closed {
		if c.err != nil {
			return nil, c.err
		}
		if c.drained {
			return relation.NewResult(c.schema), nil
		}
		return nil, errCursorClosed
	}
	if !c.started {
		c.started = true
		c.execStart = time.Now()
		out := relation.NewResult(c.schema)
		if len(c.plans) > 0 {
			// c.schema is plans[0].HeadSchema() whenever plans exist.
			var err error
			out, err = cq.MaterializeUnion(c.ctx, c.plans,
				cq.ExecOptions{Limit: c.limit, Parallelism: c.par, Kernels: &c.kernels})
			if err != nil {
				c.err = err
				c.closed = true
				return nil, err
			}
		}
		c.execTime = time.Since(c.execStart)
		c.closed = true
		c.drained = true
		return out, nil
	}
	out := relation.NewResult(c.schema)
	for c.Next() {
		if err := out.Insert(c.Tuple()); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Query reformulates req.Query at req.Peer over the transitive closure
// of mappings and returns a Cursor over the deduplicated union of the
// rewritings' answers. Reformulations and compiled plans are cached
// exactly as for Answer, and a thundering herd of identical cold
// queries coalesces: concurrent misses on one cache key reformulate
// and compile exactly once (the rest wait for the leader). ctx cancels
// the reformulation search, the containment pruning, the remote
// fetches, and — through the cursor — execution itself.
//
// On a network with remote peers the preparation phase additionally
// syncs their statistics fingerprints (one cheap State round trip per
// remote peer — remote schema growth invalidates caches through the
// same topoVersion path a local AddSchema takes) and lazily re-fetches
// the remote relations the rewritings reference whose fingerprints
// moved, streaming tuple batches on a bounded worker pool. Remote
// preparation is serialized per network; execution still runs
// unlocked over the immutable snapshot. An all-local network skips all
// of this — the fast path is unchanged.
func (n *Network) Query(ctx context.Context, req Request) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		budget   *retryBudget
		degraded map[string]*DegradedPeer
		retries  int
	)
	if len(n.remotes) > 0 {
		n.remoteMu.Lock()
		defer n.remoteMu.Unlock()
		budget = newRetryBudget(req.Retry)
		degraded = make(map[string]*DegradedPeer)
		r, err := n.syncRemotes(ctx, req.Retry, budget, req.AllowStale, degraded)
		retries += r
		if err != nil {
			return nil, err
		}
	}
	// The cache key reads topoVersion after the remote sync, so a
	// reformulation derived before a remote schema change cannot be
	// served for this request.
	key := n.reformCacheKey(req.Peer, req.Query, req.Reform)
	t0 := time.Now()
	e, err := n.reformulateOnce(ctx, key, req)
	if err != nil {
		return nil, err
	}
	c := &Cursor{
		ctx:        ctx,
		limit:      req.Limit,
		par:        req.Parallelism,
		rewritings: e.rws,
		stats:      e.stats,
	}
	finishRemote := func() {
		c.retries = retries
		c.degraded = flattenDegraded(degraded)
	}
	if len(e.rws) == 0 {
		// No rewriting reaches stored data: the cursor is empty but its
		// schema still carries the typed head attributes the non-empty
		// path would produce.
		c.schema = cq.HeadSchemaFor(n.Peer(req.Peer).Store, req.Query)
		c.reformTime = time.Since(t0)
		finishRemote()
		return c, nil
	}
	var ships map[string]*relation.Relation
	if len(n.remotes) > 0 {
		shipBudget := uint64(DefaultShipRowBudget)
		switch {
		case req.ShipRowBudget > 0:
			shipBudget = uint64(req.ShipRowBudget)
		case req.ShipRowBudget < 0:
			shipBudget = 0
		}
		// A limited query needs at most Limit answers, so cap what any
		// shipped sub-plan may stream back. Sound because budgets fail
		// typed rather than truncate: a too-tight clamp falls back to
		// mirroring, never drops answers.
		if req.Limit > 0 {
			if lim := uint64(req.Limit) * shipLimitFactor; shipBudget == 0 || lim < shipBudget {
				shipBudget = lim
			}
		}
		r, sh, paths, err := n.fetchReferenced(ctx, e.rws, req.Retry, budget,
			req.AllowStale, degraded, req.Ship, shipBudget)
		retries += r
		if err != nil {
			return nil, err
		}
		ships, c.syncPaths = sh, paths
	}
	// globalSnapshot, not GlobalDB: on the remote path this goroutine
	// already holds remoteMu.
	var plans []*cq.Plan
	var err2 error
	if len(ships) > 0 {
		// Shipped partial replicas shadow the global snapshot through a
		// per-request overlay catalog. They bypass the plan cache: the
		// overlay's relations are request-specific, so a cached plan
		// compiled against them could never be reused safely anyway.
		cat := overlayCatalog{base: n.globalSnapshot(), over: ships}
		plans = make([]*cq.Plan, len(e.rws))
		for i, rw := range e.rws {
			plans[i], err2 = cq.Compile(cat, rw)
			if err2 != nil {
				return nil, err2
			}
		}
	} else {
		plans, err2 = e.plansFor(n.globalSnapshot())
		if err2 != nil {
			return nil, err2
		}
	}
	c.plans = plans
	c.schema = plans[0].HeadSchema()
	// Preparation time includes plan compilation (a cold-cursor cost the
	// old Answer counted too), so cold and warm timings stay comparable.
	c.reformTime = time.Since(t0)
	finishRemote()
	return c, nil
}

// flattenDegraded renders the per-peer degradation records in
// deterministic peer-name order (nil in, nil out — the all-local path
// allocates nothing).
func flattenDegraded(m map[string]*DegradedPeer) []DegradedPeer {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DegradedPeer, len(names))
	for i, name := range names {
		out[i] = *m[name]
	}
	return out
}

// LocalQuery returns a cursor over q evaluated against the peer's own
// storage only — the streaming form of LocalAnswer. The relations the
// query reads are snapshotted, so the cursor keeps the Query-time
// binding even while the peer's store mutates under a lazy drain.
func (n *Network) LocalQuery(ctx context.Context, peer string, q cq.Query) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The snapshot below reads the peer's store, which for a remote
	// mirror may be receiving replicas from a concurrent Query prepare.
	if len(n.remotes) > 0 {
		n.remoteMu.RLock()
		defer n.remoteMu.RUnlock()
	}
	p := n.Peer(peer)
	if p == nil {
		return nil, errUnknownPeer(peer)
	}
	db := relation.NewDatabase()
	for _, pred := range q.Predicates() {
		if r := p.Store.Get(pred); r != nil {
			db.Put(r.SnapshotAs(pred))
		}
	}
	plan, err := cq.Compile(db, q)
	if err != nil {
		return nil, err
	}
	return &Cursor{
		ctx:    ctx,
		plans:  []*cq.Plan{plan},
		schema: plan.HeadSchema(),
	}, nil
}
