package pdms

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
	"repro/internal/view"
)

// sortedWire renders rows in a canonical order through the tuple-batch
// wire codec — the byte-identical comparison every push differential
// uses.
func sortedWire(rows []relation.Tuple) []byte {
	out := append([]relation.Tuple(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return relation.EncodeTupleBatch(out)
}

func insRec(ver uint64) relation.ChangeRecord {
	return relation.ChangeRecord{Op: relation.ChangeInsert, Rel: "r", Ver: ver,
		Rows: int(ver), Tuple: relation.Tuple{relation.SV(fmt.Sprintf("t%d", ver))}}
}

// TestChangeFeedDrainClose pins the feed's reader semantics: buffered
// records drain as one batch, a blocked Next is unblocked by Close with
// the typed terminal error, and push after Close reports false (the
// lazy-deregistration signal).
func TestChangeFeedDrainClose(t *testing.T) {
	f := newChangeFeed(8)
	if !f.push(insRec(1)) || !f.push(insRec(2)) {
		t.Fatal("push into an open feed reported closed")
	}
	batch, err := f.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].Ver != 1 || batch[1].Ver != 2 {
		t.Fatalf("drained batch = %+v, want the 2 pushed records in order", batch)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := f.Next()
		errc <- err
	}()
	f.Close()
	if err := <-errc; !errors.Is(err, ErrFeedClosed) {
		t.Fatalf("Next on closed feed: err = %v, want ErrFeedClosed", err)
	}
	if f.push(insRec(3)) {
		t.Error("push after Close reported the feed still live")
	}
	f.Close() // idempotent
}

// TestChangeFeedOverflowGap pins eviction: the push that overflows the
// bounded queue marks the feed gapped and drops its buffer, Next
// reports the typed gap, and later pushes are swallowed (true, so the
// feed stays registered until the reader notices) rather than blocking.
func TestChangeFeedOverflowGap(t *testing.T) {
	f := newChangeFeed(2)
	f.push(insRec(1))
	f.push(insRec(2))
	if f.Gapped() {
		t.Fatal("feed gapped before overflowing")
	}
	if !f.push(insRec(3)) {
		t.Fatal("overflowing push reported the feed closed")
	}
	if !f.Gapped() {
		t.Fatal("overflow did not gap the feed")
	}
	if _, err := f.Next(); !errors.Is(err, ErrSubscriptionGap) {
		t.Fatalf("Next on gapped feed: err = %v, want ErrSubscriptionGap", err)
	}
	if !f.push(insRec(4)) {
		t.Error("post-gap push reported closed — must drop silently instead")
	}
	if _, err := f.Next(); !errors.Is(err, ErrSubscriptionGap) {
		t.Fatalf("gap is not terminal: err = %v", err)
	}
}

// TestFanoutNeverBlocksServing is the slow-subscriber guarantee: with
// two stalled single-slot subscribers registered, a burst of commits
// completes promptly (the write lock is never held hostage), both feeds
// are evicted with gaps, and a closed feed is deregistered lazily by
// the next commit.
func TestFanoutNeverBlocksServing(t *testing.T) {
	p := NewPeer("p", relation.NewSchema("r", relation.Attr("x")))
	f1, _, _ := p.FeedSubscribe(nil, 1)
	f2, _, _ := p.FeedSubscribe(nil, 1)
	if got := p.FeedCount(); got != 2 {
		t.Fatalf("FeedCount = %d, want 2", got)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 64; i++ {
			if err := p.Insert("r", relation.Tuple{relation.SV(fmt.Sprintf("v%02d", i))}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("commits blocked behind stalled subscribers")
	}
	if !f1.Gapped() || !f2.Gapped() {
		t.Error("stalled single-slot feeds were not evicted with a gap")
	}
	f1.Close()
	if err := p.Insert("r", relation.Tuple{relation.SV("post-close")}); err != nil {
		t.Fatal(err)
	}
	if got := p.FeedCount(); got != 1 {
		t.Errorf("FeedCount after closing one feed = %d, want 1 (lazy deregistration)", got)
	}
}

// TestFeedSubscribeCatchUp pins the durable catch-up preload: a
// subscription listing a stale fingerprint gets the covering change
// records buffered before live ones, an up-to-date fingerprint gets
// nothing, an oversized catch-up is skipped (the ack fingerprint and
// poll path heal it), and an in-memory peer never preloads.
func TestFeedSubscribeCatchUp(t *testing.T) {
	p, err := OpenDurablePeer("d", t.TempDir(), relation.NewSchema("r", relation.Attr("x")))
	if err != nil {
		t.Fatal(err)
	}
	defer p.ClosePersist()
	for _, v := range []string{"a", "b", "c"} {
		if err := p.Insert("r", relation.Tuple{relation.SV(v)}); err != nil {
			t.Fatal(err)
		}
	}
	ver := p.Store.Get("r").Version()

	behind, _, stats := p.FeedSubscribe(map[string]uint64{"r": ver - 2}, 0)
	defer behind.Close()
	if len(stats) != 1 || stats[0].Stats.Rows != 3 {
		t.Fatalf("subscribe ack stats = %+v, want r with 3 rows", stats)
	}
	recs, err := behind.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Tuple[0].S != "b" || recs[1].Tuple[0].S != "c" {
		t.Fatalf("catch-up records = %+v, want the b and c inserts", recs)
	}
	if recs[len(recs)-1].Ver != ver {
		t.Fatalf("last catch-up record at version %d, want %d", recs[len(recs)-1].Ver, ver)
	}

	current, _, _ := p.FeedSubscribe(map[string]uint64{"r": ver}, 0)
	defer current.Close()
	tiny, _, _ := p.FeedSubscribe(map[string]uint64{"r": 0}, 2) // 3-record catch-up > queue of 2: skipped
	defer tiny.Close()
	if err := p.Insert("r", relation.Tuple{relation.SV("live")}); err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]*ChangeFeed{"up-to-date": current, "oversized": tiny} {
		recs, err := f.Next()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) != 1 || recs[0].Tuple[0].S != "live" {
			t.Errorf("%s subscription got %+v, want only the live insert", name, recs)
		}
	}

	mem := NewPeer("m", relation.NewSchema("r", relation.Attr("x")))
	if err := mem.Insert("r", relation.Tuple{relation.SV("a")}); err != nil {
		t.Fatal(err)
	}
	f, _, _ := mem.FeedSubscribe(map[string]uint64{"r": 0}, 0)
	defer f.Close()
	if err := mem.Insert("r", relation.Tuple{relation.SV("fresh")}); err != nil {
		t.Fatal(err)
	}
	recs, err = f.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Tuple[0].S != "fresh" {
		t.Errorf("in-memory subscription got %+v, want only the post-subscribe insert", recs)
	}
}

// TestPushDifferentialLoopback is the loopback push differential: with
// live subscriptions to both remote peers, served-side mutations reach
// the coordinator's replicas and placed materialized views with zero
// State probes and zero re-scans, the query's sync paths report "push",
// and three extents agree byte-identically under the sorted wire
// encoding — the push-maintained view, a full re-derivation over the
// coordinator's global database, and the all-local oracle maintained
// through the in-process Publish path. A second raw subscriber on the
// same serving peer checks the one-to-many fan-out delivers every
// record.
func TestPushDifferentialLoopback(t *testing.T) {
	local := chainNetwork(t)
	n, lb, served := remoteChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")

	// Baseline query fills the replicas (cold scans), so view refreshes
	// and the later push replay have a complete base.
	base, err := n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantBase, err := local.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sortedWire(base.Answers.Rows()), sortedWire(wantBase.Answers.Rows())) {
		t.Fatal("baseline remote answers differ from the all-local oracle")
	}

	defs := []string{
		"v(N, E) :- mit.subject(N, E)",
		"w(N) :- mit.subject(N, E), berkeley.course(N, S)",
	}
	pushSubs := make([]*Subscription, len(defs))
	localSubs := make([]*Subscription, len(defs))
	for i, def := range defs {
		if pushSubs[i], err = n.Subscribe("berkeley", fmt.Sprintf("mv%d", i), cq.MustParse(def)); err != nil {
			t.Fatal(err)
		}
		if localSubs[i], err = local.Subscribe("berkeley", fmt.Sprintf("mv%d", i), cq.MustParse(def)); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, peer := range []string{"mit", "oxford"} {
		if err := n.StartPush(ctx, peer); err != nil {
			t.Fatal(err)
		}
		defer n.StopPush(peer)
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	for _, peer := range []string{"mit", "oxford"} {
		if err := n.WaitPushLive(wctx, peer); err != nil {
			t.Fatalf("push to %s never went live: %v", peer, err)
		}
	}

	// Second consumer of mit's feed: the raw one-to-many subscriber.
	var rawMu sync.Mutex
	var raw []relation.ChangeRecord
	acked := make(chan struct{})
	rawDone := make(chan error, 1)
	go func() {
		rawDone <- lb.Subscribe(ctx, "mit", nil,
			func(PeerState) error { close(acked); return nil },
			func(recs []relation.ChangeRecord) error {
				rawMu.Lock()
				raw = append(raw, recs...)
				rawMu.Unlock()
				return nil
			})
	}()
	select {
	case <-acked:
	case <-time.After(30 * time.Second):
		t.Fatal("raw subscriber never acked")
	}

	statesBase, scansBase := lb.States(), lb.Scans()

	// Identical mutations on the served node and the all-local oracle
	// (the oracle goes through Publish so its views are maintained by
	// the in-process updategram path).
	inserts := []relation.Tuple{
		{relation.SV("Robotics"), relation.IV(25)},
		{relation.SV("Databases"), relation.IV(60)}, // joins berkeley.course in w
		{relation.SV("Compilers"), relation.IV(45)},
	}
	for _, row := range inserts {
		if err := served["mit"].Insert("subject", row); err != nil {
			t.Fatal(err)
		}
		if _, err := local.InsertAndPublish("mit", "subject", row); err != nil {
			t.Fatal(err)
		}
	}
	del := relation.Tuple{relation.SV("AI"), relation.IV(80)}
	if removed, err := served["mit"].Delete("subject", del); err != nil || removed != 1 {
		t.Fatalf("served delete removed %d (%v), want 1", removed, err)
	}
	if _, err := local.Publish("mit", "subject", view.Updategram{Relation: "subject",
		Deletes: []relation.Tuple{del}}); err != nil {
		t.Fatal(err)
	}

	if err := n.WaitPushApplied(wctx, "mit", "subject", served["mit"].Store.Get("subject").Version()); err != nil {
		t.Fatalf("push never applied the mutations: %v", err)
	}

	// The warm query sees the pushed state without probing or scanning.
	cur, err := n.Query(ctx, Request{Peer: "berkeley", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	pushPaths, scanPaths := 0, 0
	for _, sp := range cur.SyncPaths() {
		switch sp.Path {
		case "push":
			pushPaths++
		case "scan":
			scanPaths++
		}
	}
	cur.Close()
	want, err := local.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sortedWire(got.Rows()), sortedWire(want.Answers.Rows())) {
		t.Errorf("push-propagated answers differ from the all-local oracle:\n got %v\nwant %v",
			got.Rows(), want.Answers.Rows())
	}
	if pushPaths == 0 {
		t.Errorf("no relation took the push sync path: %v", cur.SyncPaths())
	}
	if scanPaths != 0 {
		t.Errorf("push-live query re-scanned %d relations: %v", scanPaths, cur.SyncPaths())
	}
	if got := lb.States(); got != statesBase {
		t.Errorf("push-live query probed State %d times", got-statesBase)
	}
	if got := lb.Scans(); got != scansBase {
		t.Errorf("push-live query scanned %d relations", got-scansBase)
	}

	// Three-way view differential, byte-identical under the wire codec:
	// push-maintained ≡ re-derived from scratch ≡ all-local oracle.
	for i := range defs {
		pushExt := n.ViewExtent(pushSubs[i])
		if pushExt == nil {
			t.Fatalf("view %d has no push-maintained extent", i)
		}
		mv := view.NewMaterialized(view.NewView("rederive", cq.MustParse(defs[i])))
		if err := mv.Refresh(n.GlobalDB()); err != nil {
			t.Fatal(err)
		}
		localExt := local.ViewExtent(localSubs[i])
		pushEnc := sortedWire(pushExt.Rows())
		if !bytes.Equal(pushEnc, sortedWire(mv.Extent.Rows())) {
			t.Errorf("view %d: push-maintained extent differs from full re-derivation:\n got %v\nwant %v",
				i, pushExt.Rows(), mv.Extent.Rows())
		}
		if !bytes.Equal(pushEnc, sortedWire(localExt.Rows())) {
			t.Errorf("view %d: push-maintained extent differs from the all-local oracle:\n got %v\nwant %v",
				i, pushExt.Rows(), localExt.Rows())
		}
	}

	// The raw subscriber saw every record the coordinator saw: 3 inserts
	// plus 1 delete, in commit order.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rawMu.Lock()
		n := len(raw)
		rawMu.Unlock()
		if n >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("raw subscriber saw %d records, want 4", n)
		}
		time.Sleep(time.Millisecond)
	}
	rawMu.Lock()
	defer rawMu.Unlock()
	if len(raw) != 4 {
		t.Fatalf("raw subscriber saw %d records, want exactly 4", len(raw))
	}
	for i, rec := range raw[:3] {
		if rec.Op != relation.ChangeInsert || rec.Rel != "subject" || rec.Tuple[0].S != inserts[i][0].S {
			t.Errorf("raw record %d = %+v, want insert of %v", i, rec, inserts[i])
		}
	}
	if raw[3].Op != relation.ChangeDelete || raw[3].Tuple[0].S != "AI" {
		t.Errorf("raw record 3 = %+v, want the AI delete", raw[3])
	}
	if batches, records, gaps := n.PushCounts(); batches == 0 || records < 4 || gaps != 0 {
		t.Errorf("PushCounts = %d batches, %d records, %d gaps; want >0, >=4, 0", batches, records, gaps)
	}
}

// TestPushResubscribeAfterGap evicts the coordinator's subscription by
// shrinking the feed to one slot and bursting commits: the manager
// counts the typed gap, resubscribes, and the next query heals the
// replica through the poll path — answers match the all-local oracle
// and a post-gap commit still arrives through the resubscribed stream.
func TestPushResubscribeAfterGap(t *testing.T) {
	n, lb, served := remoteChainNetwork(t)
	lb.FeedQueue = 1
	q := cq.MustParse("q(T) :- course(T, S)")
	if _, err := n.Answer("berkeley", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := n.StartPush(ctx, "mit"); err != nil {
		t.Fatal(err)
	}
	defer n.StopPush("mit")
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := n.WaitPushLive(wctx, "mit"); err != nil {
		t.Fatal(err)
	}

	var rows []relation.Tuple
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, gaps := n.PushCounts(); gaps > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("insert bursts never overflowed the one-slot feed")
		}
		row := relation.Tuple{relation.SV(fmt.Sprintf("burst%05d", len(rows))), relation.IV(int64(len(rows)))}
		if err := served["mit"].Insert("subject", row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}

	// The manager resubscribes after its backoff; a post-gap commit must
	// flow through the new subscription (observed via the fingerprint,
	// since the gap left the replica itself for the poll path to heal).
	if err := n.WaitPushLive(wctx, "mit"); err != nil {
		t.Fatalf("manager never resubscribed after the gap: %v", err)
	}
	row := relation.Tuple{relation.SV("post-gap"), relation.IV(1)}
	if err := served["mit"].Insert("subject", row); err != nil {
		t.Fatal(err)
	}
	rows = append(rows, row)
	if err := n.WaitPushApplied(wctx, "mit", "subject", served["mit"].Store.Get("subject").Version()); err != nil {
		t.Fatalf("post-gap commit never arrived: %v", err)
	}

	got, err := n.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := chainNetwork(t)
	for _, row := range rows {
		if err := oracle.Peer("mit").Insert("subject", row); err != nil {
			t.Fatal(err)
		}
	}
	want, err := oracle.Answer("berkeley", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sortedWire(got.Answers.Rows()), sortedWire(want.Answers.Rows())) {
		t.Errorf("post-gap answers differ from oracle: got %d rows, want %d",
			got.Answers.Len(), want.Answers.Len())
	}
	if _, _, gaps := n.PushCounts(); gaps == 0 {
		t.Error("gap counter never incremented")
	}
}

// pollOnly hides Subscribe from a push-capable transport, so the
// PushTransport type assertion fails — the pre-push node.
type pollOnly struct{ Transport }

// TestStartPushErrors pins the manager's error paths: unknown peers and
// push-incapable transports fail fast and typed, double starts are
// rejected, and StopPush is an idempotent no-op without a manager.
func TestStartPushErrors(t *testing.T) {
	n, _, _ := remoteChainNetwork(t)
	ctx := context.Background()
	if err := n.StartPush(ctx, "ghost"); err == nil {
		t.Error("StartPush for an unknown peer succeeded")
	}

	solo := NewPeer("solo", relation.NewSchema("r", relation.Attr("x")))
	n2 := NewNetwork()
	if _, err := n2.AddRemotePeer(ctx, "solo", pollOnly{NewLoopback(solo)}); err != nil {
		t.Fatal(err)
	}
	if err := n2.StartPush(ctx, "solo"); !errors.Is(err, ErrPushUnsupported) {
		t.Errorf("StartPush over a poll-only transport: err = %v, want ErrPushUnsupported", err)
	}

	if err := n.StartPush(ctx, "mit"); err != nil {
		t.Fatal(err)
	}
	if err := n.StartPush(ctx, "mit"); err == nil {
		t.Error("double StartPush succeeded")
	}
	n.StopPush("mit")
	if err := n.StartPush(ctx, "mit"); err != nil {
		t.Fatalf("StartPush after StopPush: %v", err)
	}
	n.StopPush("mit")
	n.StopPush("mit")   // idempotent
	n.StopPush("ghost") // unknown peer: no-op
}

// budgetTap records the row budget of every sub-plan shipped through it.
type budgetTap struct {
	*Loopback
	mu      sync.Mutex
	budgets []uint64
}

func (b *budgetTap) ExecPlan(ctx context.Context, peer string, sp relation.SubPlan,
	deliver func([]relation.Tuple) error) error {
	b.mu.Lock()
	b.budgets = append(b.budgets, sp.RowBudget)
	b.mu.Unlock()
	return b.Loopback.ExecPlan(ctx, peer, sp, deliver)
}

func (b *budgetTap) taken() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]uint64(nil), b.budgets...)
	b.budgets = nil
	return out
}

// clampNet wires home (local: a selective dim plus the fact vocabulary)
// to src (remote: factRows fact rows over 10 keys, behind a budgetTap),
// the small-scale cold-remote-join fixture of the ship tests.
func clampNet(t *testing.T, factRows int) (*Network, *budgetTap) {
	t.Helper()
	src := NewPeer("src", relation.NewSchema("fact", relation.Attr("key"), relation.Attr("payload")))
	for i := 0; i < factRows; i++ {
		if err := src.Insert("fact", relation.Tuple{
			relation.SV(fmt.Sprintf("k%d", i%10)), relation.SV(fmt.Sprintf("p%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	home := NewPeer("home",
		relation.NewSchema("fact", relation.Attr("key"), relation.Attr("payload")),
		relation.NewSchema("dim", relation.Attr("key"), relation.Attr("label")))
	for k := 0; k < 3; k++ {
		if err := home.Insert("dim", relation.Tuple{
			relation.SV(fmt.Sprintf("k%d", k)), relation.SV(fmt.Sprintf("l%d", k))}); err != nil {
			t.Fatal(err)
		}
	}
	tap := &budgetTap{Loopback: NewLoopback(src)}
	n := NewNetwork()
	if err := n.AddPeer(home); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRemotePeer(context.Background(), "src", tap); err != nil {
		t.Fatal(err)
	}
	m := glav.MustNew("s2h", "src", cq.MustParse("m(K, P) :- fact(K, P)"),
		"home", cq.MustParse("m(K, P) :- fact(K, P)"))
	if err := n.AddMapping(m); err != nil {
		t.Fatal(err)
	}
	return n, tap
}

func clampRequest(limit, shipBudget int) Request {
	return Request{
		Peer:          "home",
		Query:         cq.MustParse("q(P, L) :- fact(K, P), dim(K, L)"),
		Reform:        ReformOptions{MaxDepth: 3},
		Ship:          ShipAlways,
		Limit:         limit,
		ShipRowBudget: shipBudget,
	}
}

// TestShipLimitClampsRowBudget is the regression pin for the Limit →
// RowBudget clamp: a limited query ships its sub-plans with budget
// Limit × shipLimitFactor, an unlimited query ships the default budget,
// a huge Limit never raises the budget past it, and an explicit
// ShipRowBudget combines with the clamp by taking the minimum.
func TestShipLimitClampsRowBudget(t *testing.T) {
	n, tap := clampNet(t, 50) // ~15 rows per 3-key ship: well under every budget
	run := func(limit, shipBudget int, want uint64) {
		t.Helper()
		n.InvalidateCaches()
		cur, err := n.Query(context.Background(), clampRequest(limit, shipBudget))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Materialize(); err != nil {
			t.Fatal(err)
		}
		cur.Close()
		budgets := tap.taken()
		if len(budgets) == 0 {
			t.Fatalf("limit=%d budget=%d: no sub-plan shipped", limit, shipBudget)
		}
		for _, got := range budgets {
			if got != want {
				t.Errorf("limit=%d budget=%d: shipped RowBudget = %d, want %d",
					limit, shipBudget, got, want)
			}
		}
	}
	run(1, 0, shipLimitFactor)          // Limit 1 clamps to 1 × factor
	run(3, 0, 3*shipLimitFactor)        // clamp scales with Limit
	run(0, 0, DefaultShipRowBudget)     // unlimited: the default backstop
	run(1<<20, 0, DefaultShipRowBudget) // huge Limit never raises the budget
	run(1, 100, shipLimitFactor)        // explicit budget: clamp wins when tighter
	run(10, 100, 100)                   // explicit budget wins when tighter
	run(10, -1, 10*shipLimitFactor)     // unlimited budget: only the clamp caps
}

// TestShipLimitClampOverflowFallsBack pins the clamp's soundness: when
// the clamped budget is smaller than the shipped result, the serving
// side fails the plan typed, the coordinator falls back to mirroring
// (no ship path in SyncPaths), and the limited answer is still exact —
// a member of the unclamped oracle's answer set.
func TestShipLimitClampOverflowFallsBack(t *testing.T) {
	n, tap := clampNet(t, 1000) // ~300 rows per 3-key ship: overflows Limit 1's budget of 64
	cur, err := n.Query(context.Background(), clampRequest(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]int)
	for _, sp := range cur.SyncPaths() {
		paths[sp.Path]++
	}
	cur.Close()
	if budgets := tap.taken(); len(budgets) == 0 {
		t.Fatal("clamped query never attempted a ship")
	} else if budgets[0] != shipLimitFactor {
		t.Fatalf("attempted ship budget = %d, want %d", budgets[0], shipLimitFactor)
	}
	if paths["ship"] != 0 {
		t.Errorf("over-budget ship still reported the ship path: %v", paths)
	}
	if got.Len() != 1 {
		t.Fatalf("Limit 1 returned %d answers", got.Len())
	}

	// The unclamped oracle over the now-mirrored replica.
	n.InvalidateCaches()
	oracle, err := n.Query(context.Background(), Request{
		Peer:   "home",
		Query:  cq.MustParse("q(P, L) :- fact(K, P), dim(K, L)"),
		Reform: ReformOptions{MaxDepth: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := oracle.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	oracle.Close()
	if !keySet(full.Rows())[got.Rows()[0].Key()] {
		t.Errorf("limited answer %v is not in the oracle answer set", got.Rows()[0])
	}
}
