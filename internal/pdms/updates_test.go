package pdms

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
	"repro/internal/view"
)

// updatesNetwork builds a two-peer network: a holds r(name, n), b holds
// s(name, label), both local.
func updatesNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	a := NewPeer("a", relation.NewSchema("r", relation.Attr("name"), relation.IntAttr("n")))
	b := NewPeer("b", relation.NewSchema("s", relation.Attr("name"), relation.Attr("label")))
	for _, p := range []*Peer{a, b} {
		if err := n.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []relation.Tuple{
		{relation.SV("x"), relation.IV(1)},
		{relation.SV("y"), relation.IV(2)},
	} {
		if err := a.Insert("r", row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []relation.Tuple{
		{relation.SV("x"), relation.SV("red")},
		{relation.SV("z"), relation.SV("blue")},
	} {
		if err := b.Insert("s", row); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestSubscribePlacement pins Subscribe's checks: unknown host peer
// and unknown referenced relations are rejected; a valid definition
// materializes immediately and registers with the network.
func TestSubscribePlacement(t *testing.T) {
	n := updatesNetwork(t)
	def := cq.MustParse("v(N) :- a.r(N, X), b.s(N, L)")
	if _, err := n.Subscribe("ghost", "v", def); err == nil {
		t.Error("subscription at unknown peer succeeded")
	}
	if _, err := n.Subscribe("b", "v", cq.MustParse("v(N) :- a.ghost(N, X)")); err == nil {
		t.Error("subscription over unknown relation succeeded")
	}
	if _, err := n.Subscribe("b", "v", cq.MustParse("v(N) :- ghost.r(N, X)")); err == nil {
		t.Error("subscription over unknown qualified peer succeeded")
	}
	sub, err := n.Subscribe("b", "v", def)
	if err != nil {
		t.Fatal(err)
	}
	if sub.AtPeer != "b" {
		t.Errorf("subscription placed at %q, want b", sub.AtPeer)
	}
	if got := sub.MV.Extent.Len(); got != 1 {
		t.Errorf("initial extent has %d rows, want 1 (only x joins)", got)
	}
	if subs := n.Subscriptions(); len(subs) != 1 || subs[0] != sub {
		t.Errorf("Subscriptions() = %v, want the one placed view", subs)
	}
}

// TestPublishPropagatesUpdategrams pins Publish: the updategram lands
// in the base relation, affected subscriptions get incremental deltas
// (inserts and deletes), untouched subscriptions are skipped, and the
// stats count touched views and shipped tuples.
func TestPublishPropagatesUpdategrams(t *testing.T) {
	n := updatesNetwork(t)
	joined, err := n.Subscribe("b", "v", cq.MustParse("v(N) :- a.r(N, X), b.s(N, L)"))
	if err != nil {
		t.Fatal(err)
	}
	other, err := n.Subscribe("a", "w", cq.MustParse("w(L) :- b.s(N, L)"))
	if err != nil {
		t.Fatal(err)
	}

	// Insert z into a.r: it joins b.s's z row, so v gains a row; w does
	// not mention a.r and must be skipped.
	st, err := n.Publish("a", "r", view.Updategram{Relation: "r",
		Inserts: []relation.Tuple{{relation.SV("z"), relation.IV(3)}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewsTouched != 1 {
		t.Errorf("ViewsTouched = %d, want 1 (w does not mention a.r)", st.ViewsTouched)
	}
	if st.TuplesShipped != 1 {
		t.Errorf("TuplesShipped = %d, want 1", st.TuplesShipped)
	}
	if got := joined.MV.Extent.Len(); got != 2 {
		t.Errorf("v extent after insert = %d rows, want 2", got)
	}
	if n.Peer("a").Store.Get("r").Len() != 3 {
		t.Error("published insert did not reach the base relation")
	}

	// Delete x from a.r: v loses its original row.
	st, err = n.Publish("a", "r", view.Updategram{Relation: "r",
		Deletes: []relation.Tuple{{relation.SV("x"), relation.IV(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewsTouched != 1 || st.TuplesShipped != 1 {
		t.Errorf("delete stats = %+v, want 1 view, 1 tuple", st)
	}
	rows := joined.MV.Extent.Rows()
	if len(rows) != 1 || rows[0][0].S != "z" {
		t.Errorf("v extent after delete = %v, want just (z)", rows)
	}
	if got := other.MV.Extent.Len(); got != 2 {
		t.Errorf("untouched w extent changed: %d rows, want 2", got)
	}
}

// TestPublishValidation pins Publish's error paths: unknown peer and
// unknown relation fail without mutating anything.
func TestPublishValidation(t *testing.T) {
	n := updatesNetwork(t)
	u := view.Updategram{Relation: "r", Inserts: []relation.Tuple{{relation.SV("q"), relation.IV(9)}}}
	if _, err := n.Publish("ghost", "r", u); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("publish at unknown peer: err = %v", err)
	}
	if _, err := n.Publish("a", "ghost", u); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("publish to unknown relation: err = %v", err)
	}
	if n.Peer("a").Store.Get("r").Len() != 2 {
		t.Error("failed publish mutated the base relation")
	}
}

// TestInsertAndPublish pins the single-insert convenience wrapper.
func TestInsertAndPublish(t *testing.T) {
	n := updatesNetwork(t)
	sub, err := n.Subscribe("b", "v", cq.MustParse("v(N, X) :- a.r(N, X)"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.InsertAndPublish("a", "r", relation.Tuple{relation.SV("w"), relation.IV(7)})
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewsTouched != 1 || st.TuplesShipped != 1 {
		t.Errorf("stats = %+v, want 1 view, 1 tuple", st)
	}
	if got := sub.MV.Extent.Len(); got != 3 {
		t.Errorf("extent = %d rows, want 3", got)
	}
}
