package pdms

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// This file implements remote peers: participants whose data lives on
// another node, reached through a Transport. A RemotePeer keeps a local
// mirror — the remote schemas plus lazily synced replica relations — so
// reformulation, cost-based planning, and the compiled engine run
// unchanged: they see ordinary relations whose rows happen to have
// streamed in over the wire. Freshness is fingerprint-driven: every
// Query starts with one cheap State round trip per remote peer, schema
// growth flows into the same atomic topoVersion path local AddSchema
// uses (so cached reformulations die exactly like they do for local
// topology changes), and only referenced relations whose remote
// (version, rows) fingerprint moved are re-scanned — warm queries move
// no tuples.

// RemotePeer is a network participant served over a Transport. Its
// mirror peer carries the remote schemas and replica relations; the
// coordinator plans and executes against those replicas, so what stays
// node-local is exactly the query engine — only base tuples cross the
// wire.
type RemotePeer struct {
	name   string
	tr     Transport
	mirror *Peer
	// schemaVer is the last remote schema version synced into the mirror.
	schemaVer uint64
	// fetched maps relation name → the remote fingerprint its replica
	// was built from; latest holds the fingerprints of the most recent
	// State call. Both are guarded by the owning Network's remoteMu.
	fetched map[string]remoteFP
	latest  map[string]remoteFP
}

// remoteFP is the freshness fingerprint of one remote relation.
type remoteFP struct {
	ver  uint64
	rows int
}

// Name returns the remote peer's name.
func (rp *RemotePeer) Name() string { return rp.name }

// fetchParallelism bounds how many relation scans the fetch path runs
// concurrently — the remote analogue of the PR 3 union worker pool's
// GOMAXPROCS cap (fetches are network-bound, so a small multiple).
func fetchParallelism(jobs int) int {
	par := 2 * runtime.GOMAXPROCS(0)
	if par > jobs {
		par = jobs
	}
	if par < 1 {
		par = 1
	}
	return par
}

// AddRemotePeer registers a peer whose data is served by tr under the
// given name: the remote schemas are fetched and mirrored locally, and
// from then on Network.Query keeps the mirror's replicas fresh,
// fetching lazily — only relations the query's rewritings actually
// reference, only when their remote fingerprint moved. Like AddPeer it
// requires external synchronization with readers. The transport is
// owned by the caller (one transport may serve many peers); RemovePeer
// does not close it.
func (n *Network) AddRemotePeer(ctx context.Context, name string, tr Transport) (*RemotePeer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, dup := n.peers[name]; dup {
		return nil, fmt.Errorf("pdms: duplicate peer %q", name)
	}
	st, err := tr.State(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("pdms: remote peer %s state: %w", name, err)
	}
	schemas, err := tr.Schemas(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("pdms: remote peer %s schemas: %w", name, err)
	}
	mirror := NewPeer(name, schemas...)
	if err := n.AddPeer(mirror); err != nil {
		return nil, err
	}
	rp := &RemotePeer{
		name:      name,
		tr:        tr,
		mirror:    mirror,
		schemaVer: st.SchemaVersion,
		fetched:   make(map[string]remoteFP),
		latest:    latestFPs(st),
	}
	if n.remotes == nil {
		n.remotes = make(map[string]*RemotePeer)
	}
	n.remotes[name] = rp
	return rp, nil
}

// latestFPs extracts the per-relation fingerprints of a State response.
func latestFPs(st PeerState) map[string]remoteFP {
	out := make(map[string]remoteFP, len(st.Relations))
	for _, ns := range st.Relations {
		out[ns.Name] = remoteFP{ver: ns.Stats.Version, rows: ns.Stats.Rows}
	}
	return out
}

// syncRemotes refreshes every remote peer's fingerprint with one State
// round trip each, and folds remote schema growth into the mirror via
// Peer.AddSchema — which notifies the joined networks through the same
// atomic topoVersion bump a local schema change takes, so reformulation
// cache keys derived before the remote change can never be reused.
// Caller holds n.remoteMu.
func (n *Network) syncRemotes(ctx context.Context) error {
	names := make([]string, 0, len(n.remotes))
	for name := range n.remotes {
		names = append(names, name)
	}
	sort.Strings(names)
	// Probe concurrently: the States are independent reads of distinct
	// peers, and serializing them would make every query's prepare
	// latency linear in remote peers × round-trip time. The bounded
	// fan-out mirrors fetchReferenced's pool; mirror mutation stays on
	// this goroutine (which holds remoteMu's write side).
	states := make([]PeerState, len(names))
	errs := make([]error, len(names))
	if len(names) == 1 {
		states[0], errs[0] = n.remotes[names[0]].tr.State(ctx, names[0])
	} else {
		work := make(chan int, len(names))
		for i := range names {
			work <- i
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < fetchParallelism(len(names)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					states[i], errs[i] = n.remotes[names[i]].tr.State(ctx, names[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, name := range names {
		rp, st, err := n.remotes[name], states[i], errs[i]
		if err != nil {
			return fmt.Errorf("pdms: sync remote peer %s: %w", name, err)
		}
		if st.SchemaVersion != rp.schemaVer {
			schemas, err := rp.tr.Schemas(ctx, name)
			if err != nil {
				return fmt.Errorf("pdms: sync remote peer %s schemas: %w", name, err)
			}
			for _, s := range schemas {
				if !rp.mirror.HasRelation(s.Name) {
					rp.mirror.AddSchema(s)
				}
			}
			rp.schemaVer = st.SchemaVersion
		}
		rp.latest = latestFPs(st)
	}
	return nil
}

// fetchJob names one stale replica to rebuild.
type fetchJob struct {
	rp   *RemotePeer
	rel  string
	want remoteFP
}

// fetchReferenced brings every remote relation referenced by the
// rewritings up to date with the fingerprints syncRemotes just
// recorded. Stale replicas are re-scanned concurrently on a bounded
// worker pool (the PR 3 fan-out shape: a job channel, first error
// cancels the rest), each scan streaming tuple batches into a fresh
// relation built through Insert so column statistics accrue and the
// cost-based planner orders joins from remote cardinalities. The
// finished replica replaces the old one atomically from this
// goroutine, which also bumps the global snapshot fingerprint — plans
// compiled from the stale replica are recompiled, never reused. Caller
// holds n.remoteMu.
func (n *Network) fetchReferenced(ctx context.Context, rws []cq.Query) error {
	var jobs []fetchJob
	queued := make(map[string]bool)
	for _, rw := range rws {
		for _, a := range rw.Body {
			peer, rel := glav.SplitQualified(a.Pred)
			if peer == "" || queued[a.Pred] {
				continue
			}
			rp := n.remotes[peer]
			if rp == nil {
				continue // local peer: the global snapshot already has it
			}
			queued[a.Pred] = true
			want, known := rp.latest[rel]
			if !known {
				continue // mirror schema exists but remote serves no data yet
			}
			if got, ok := rp.fetched[rel]; ok && got == want {
				continue // replica already matches the remote fingerprint
			}
			jobs = append(jobs, fetchJob{rp: rp, rel: rel, want: want})
		}
	}
	if len(jobs) == 0 {
		return nil
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fetchResult struct {
		job fetchJob
		rel *relation.Relation
		err error
	}
	work := make(chan fetchJob, len(jobs))
	for _, job := range jobs {
		work <- job
	}
	close(work)
	results := make(chan fetchResult)
	for w := 0; w < fetchParallelism(len(jobs)); w++ {
		go func() {
			for job := range work {
				if err := fctx.Err(); err != nil {
					results <- fetchResult{job: job, err: err}
					continue
				}
				dst := relation.New(job.rp.mirror.Schema(job.rel))
				err := job.rp.tr.Scan(fctx, job.rp.name, job.rel, func(batch []relation.Tuple) error {
					for _, t := range batch {
						if err := dst.Insert(t); err != nil {
							return err
						}
					}
					return nil
				})
				results <- fetchResult{job: job, rel: dst, err: err}
			}
		}()
	}
	// Every queued job yields exactly one result, so draining is
	// deadlock-free even when the first error cancels the stragglers.
	var firstErr error
	for pending := len(jobs); pending > 0; pending-- {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("pdms: fetch %s.%s: %w", res.job.rp.name, res.job.rel, res.err)
				cancel() // abort the remaining scans, PR 3 style
			}
			continue
		}
		if firstErr == nil {
			res.job.rp.mirror.Store.Put(res.rel)
			res.job.rp.fetched[res.job.rel] = res.job.want
		}
	}
	return firstErr
}

// invalidateRemotesLocked drops every replica fingerprint so the next
// query re-fetches whatever it references, InvalidateCaches's
// out-of-band hammer extended to the distributed tier. Caller holds
// n.remoteMu.
func (n *Network) invalidateRemotesLocked() {
	for _, rp := range n.remotes {
		rp.fetched = make(map[string]remoteFP)
	}
}
