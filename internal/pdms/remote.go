package pdms

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// This file implements remote peers: participants whose data lives on
// another node, reached through a Transport. A RemotePeer keeps a local
// mirror — the remote schemas plus lazily synced replica relations — so
// reformulation, cost-based planning, and the compiled engine run
// unchanged: they see ordinary relations whose rows happen to have
// streamed in over the wire. Freshness is fingerprint-driven: every
// Query starts with one cheap State round trip per remote peer, schema
// growth flows into the same atomic topoVersion path local AddSchema
// uses (so cached reformulations die exactly like they do for local
// topology changes), and only referenced relations whose remote
// (version, rows) fingerprint moved are re-scanned — warm queries move
// no tuples.

// RemotePeer is a network participant served over a Transport. Its
// mirror peer carries the remote schemas and replica relations; the
// coordinator plans and executes against those replicas, so what stays
// node-local is exactly the query engine — only base tuples cross the
// wire.
type RemotePeer struct {
	name   string
	tr     Transport
	mirror *Peer
	// schemaVer is the last remote schema version synced into the mirror.
	schemaVer uint64
	// fetched maps relation name → the remote fingerprint its replica
	// was built from; latest holds the fingerprints of the most recent
	// State call. Both are guarded by the owning Network's remoteMu.
	fetched map[string]remoteFP
	latest  map[string]remoteFP
	// latestStats holds the full per-relation statistics of the most
	// recent State call — the remoteFP fingerprints above stay a tiny
	// comparable pair, while the ship-vs-mirror cost model reads the
	// per-column distinct estimates from here. Guarded by the owning
	// Network's remoteMu.
	latestStats map[string]relation.Stats
	// lastSync is when the last successful freshness probe completed;
	// lastErr is the failure that marked the peer down. Both guarded by
	// the owning Network's remoteMu.
	lastSync time.Time
	lastErr  error
	// down marks a peer whose retries were exhausted: stale-tolerant
	// queries stop probing it (they serve the last-good mirror
	// immediately) until the background prober, or a fresh-only query,
	// reaches it again. Atomic because the prober goroutine reads and
	// clears it without remoteMu.
	down atomic.Bool
	// proberMu guards proberStop, the cancel channel of the background
	// prober launched when the peer goes down. Its own mutex because
	// RemovePeer and the prober itself touch it outside remoteMu.
	proberMu   sync.Mutex
	proberStop chan struct{}
	// pushLive marks an established push subscription: pushed records
	// keep latest/fetched current, so queries skip the State probe
	// entirely. Atomic because the subscription manager flips it while
	// queries read it under remoteMu.
	pushLive atomic.Bool
	// pushFresh marks, per relation, that the push path refreshed the
	// replica since the last query referenced it — the flag behind the
	// "push" entry in Cursor.SyncPaths. Guarded by the owning Network's
	// remoteMu.
	pushFresh map[string]bool
	// pushMu guards the push subscription manager's lifecycle handles
	// (StartPush/StopPush); its own mutex because StopPush joins the
	// manager goroutine, which itself takes remoteMu.
	pushMu     sync.Mutex
	pushCancel context.CancelFunc
	pushDone   chan struct{}
}

// DegradedPeer reports one remote peer a request could not freshen:
// its answers come from the peer's last-good mirror snapshot instead
// of live data. Err is the failure that forced the degradation (an
// ErrPeerUnreachable- or ErrBudgetExhausted-class error); LastSync is
// when the mirror was last verified fresh.
type DegradedPeer struct {
	Peer     string
	Err      error
	LastSync time.Time
}

// Down reports whether the peer is currently marked down — retries
// against it were exhausted and the background prober has not yet seen
// it answer.
func (rp *RemotePeer) Down() bool { return rp.down.Load() }

// Remote returns the named remote peer, or nil — the handle for
// observing down/degraded state from tests and harnesses.
func (n *Network) Remote(name string) *RemotePeer {
	n.remoteMu.RLock()
	defer n.remoteMu.RUnlock()
	return n.remotes[name]
}

// DefaultDownProbeInterval is how often the background prober checks a
// down peer when Network.DownProbeInterval is zero.
const DefaultDownProbeInterval = 2 * time.Second

// markDown records a degradation-class failure against the peer and
// launches the background prober (once per down transition). Caller
// holds n.remoteMu.
func (n *Network) markDown(rp *RemotePeer, err error) {
	rp.lastErr = err
	if rp.down.CompareAndSwap(false, true) {
		n.startProber(rp)
	}
}

// startProber launches the goroutine that periodically probes a down
// peer with one cheap State call until the peer answers (the down flag
// clears and the next query re-syncs in full), the flag is cleared by
// a successful foreground sync, or RemovePeer stops it. Only the flag
// flips here: fingerprints and mirror state stay untouched, so
// recovery always flows through the ordinary sync path under remoteMu.
func (n *Network) startProber(rp *RemotePeer) {
	interval := n.DownProbeInterval
	if interval <= 0 {
		interval = DefaultDownProbeInterval
	}
	stop := make(chan struct{})
	rp.proberMu.Lock()
	if rp.proberStop != nil {
		close(rp.proberStop) // replace a stale prober from a previous outage
	}
	rp.proberStop = stop
	rp.proberMu.Unlock()
	go func() {
		defer func() {
			rp.proberMu.Lock()
			if rp.proberStop == stop {
				rp.proberStop = nil
			}
			rp.proberMu.Unlock()
		}()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !rp.down.Load() {
					return // a foreground sync already saw the peer answer
				}
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				_, err := rp.tr.State(ctx, rp.name)
				cancel()
				if err == nil {
					rp.down.Store(false)
					return
				}
			}
		}
	}()
}

// stopProber cancels the background prober, if one is running.
func (rp *RemotePeer) stopProber() {
	rp.proberMu.Lock()
	if rp.proberStop != nil {
		close(rp.proberStop)
		rp.proberStop = nil
	}
	rp.proberMu.Unlock()
}

// degradable reports whether a remote-operation failure may be
// absorbed by serving the last-good mirror: unreachable-class errors,
// spent budgets, hung-peer timeouts, and transient failures that
// outlasted their retries qualify. Deterministic protocol errors
// (version mismatch, unknown names) and the caller's own cancellation
// do not — degrading would mask a configuration bug or a dead request.
func degradable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if errors.Is(err, ErrVersionMismatch) {
		return false
	}
	return errors.Is(err, ErrPeerUnreachable) || errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, context.DeadlineExceeded) || Retryable(err)
}

// remoteFP is the freshness fingerprint of one remote relation.
type remoteFP struct {
	ver  uint64
	rows int
}

// Name returns the remote peer's name.
func (rp *RemotePeer) Name() string { return rp.name }

// fetchParallelism bounds how many relation scans the fetch path runs
// concurrently — the remote analogue of the PR 3 union worker pool's
// GOMAXPROCS cap (fetches are network-bound, so a small multiple).
func fetchParallelism(jobs int) int {
	par := 2 * runtime.GOMAXPROCS(0)
	if par > jobs {
		par = jobs
	}
	if par < 1 {
		par = 1
	}
	return par
}

// AddRemotePeer registers a peer whose data is served by tr under the
// given name: the remote schemas are fetched and mirrored locally, and
// from then on Network.Query keeps the mirror's replicas fresh,
// fetching lazily — only relations the query's rewritings actually
// reference, only when their remote fingerprint moved. Like AddPeer it
// requires external synchronization with readers. The transport is
// owned by the caller (one transport may serve many peers); RemovePeer
// does not close it.
func (n *Network) AddRemotePeer(ctx context.Context, name string, tr Transport) (*RemotePeer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, dup := n.peers[name]; dup {
		return nil, fmt.Errorf("pdms: duplicate peer %q", name)
	}
	st, err := tr.State(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("pdms: remote peer %s state: %w", name, err)
	}
	schemas, err := tr.Schemas(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("pdms: remote peer %s schemas: %w", name, err)
	}
	mirror := NewPeer(name, schemas...)
	if err := n.AddPeer(mirror); err != nil {
		return nil, err
	}
	rp := &RemotePeer{
		name:        name,
		tr:          tr,
		mirror:      mirror,
		schemaVer:   st.SchemaVersion,
		fetched:     make(map[string]remoteFP),
		latest:      latestFPs(st),
		latestStats: latestStatsMap(st),
		lastSync:    time.Now(),
		pushFresh:   make(map[string]bool),
	}
	if n.remotes == nil {
		n.remotes = make(map[string]*RemotePeer)
	}
	n.remotes[name] = rp
	return rp, nil
}

// latestFPs extracts the per-relation fingerprints of a State response.
func latestFPs(st PeerState) map[string]remoteFP {
	out := make(map[string]remoteFP, len(st.Relations))
	for _, ns := range st.Relations {
		out[ns.Name] = remoteFP{ver: ns.Stats.Version, rows: ns.Stats.Rows}
	}
	return out
}

// latestStatsMap extracts the full per-relation statistics of a State
// response — the ship-vs-mirror cost model's input.
func latestStatsMap(st PeerState) map[string]relation.Stats {
	out := make(map[string]relation.Stats, len(st.Relations))
	for _, ns := range st.Relations {
		out[ns.Name] = ns.Stats
	}
	return out
}

// syncRemotes refreshes every remote peer's fingerprint with one State
// round trip each (retried under the request's policy), and folds
// remote schema growth into the mirror via Peer.AddSchema — which
// notifies the joined networks through the same atomic topoVersion
// bump a local schema change takes, so reformulation cache keys
// derived before the remote change can never be reused.
//
// Failure handling is where the request's degradation contract lives:
// a peer whose probe exhausts its retries fails the whole request
// unless allowStale is set, in which case the peer is recorded in
// degraded, marked down (the background prober takes over), and its
// mirror serves whatever the last successful sync left behind. Peers
// already down are not probed at all on the stale-tolerant path —
// their queries pay zero retry latency. retries reports how many
// retries the probes actually spent. Caller holds n.remoteMu.
func (n *Network) syncRemotes(ctx context.Context, pol RetryPolicy, budget *retryBudget,
	allowStale bool, degraded map[string]*DegradedPeer) (retries int, err error) {
	names := make([]string, 0, len(n.remotes))
	for name := range n.remotes {
		rp := n.remotes[name]
		if rp.pushLive.Load() {
			// Live push subscription: pushed records keep this peer's
			// fingerprints (and schema) current, so the probe would learn
			// nothing — the watch path's zero-State-probe property.
			continue
		}
		if allowStale && rp.down.Load() {
			// Known-down peer: skip the probe, serve the last-good mirror.
			degraded[name] = &DegradedPeer{Peer: name, Err: rp.lastErr, LastSync: rp.lastSync}
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	// Probe concurrently: the States are independent reads of distinct
	// peers, and serializing them would make every query's prepare
	// latency linear in remote peers × round-trip time. The bounded
	// fan-out mirrors fetchReferenced's pool; mirror mutation stays on
	// this goroutine (which holds remoteMu's write side).
	states := make([]PeerState, len(names))
	errs := make([]error, len(names))
	var retried atomic.Int64
	probe := func(i int) {
		rp := n.remotes[names[i]]
		r, perr := retryOp(ctx, pol, budget, func(actx context.Context) error {
			st, serr := rp.tr.State(actx, names[i])
			if serr == nil {
				states[i] = st
			}
			return serr
		})
		retried.Add(int64(r))
		errs[i] = perr
	}
	if len(names) == 1 {
		probe(0)
	} else {
		work := make(chan int, len(names))
		for i := range names {
			work <- i
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < fetchParallelism(len(names)); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					probe(i)
				}
			}()
		}
		wg.Wait()
	}
	retries = int(retried.Load())
	for i, name := range names {
		rp, st, perr := n.remotes[name], states[i], errs[i]
		if perr == nil && st.SchemaVersion != rp.schemaVer {
			var schemas []relation.Schema
			r, serr := retryOp(ctx, pol, budget, func(actx context.Context) error {
				var e error
				schemas, e = rp.tr.Schemas(actx, name)
				return e
			})
			retries += r
			if serr != nil {
				perr = serr
			} else {
				for _, s := range schemas {
					if !rp.mirror.HasRelation(s.Name) {
						rp.mirror.AddSchema(s)
					}
				}
				rp.schemaVer = st.SchemaVersion
			}
		}
		if perr != nil {
			if allowStale && degradable(ctx, perr) {
				degraded[name] = &DegradedPeer{Peer: name, Err: perr, LastSync: rp.lastSync}
				n.markDown(rp, perr)
				continue
			}
			return retries, fmt.Errorf("pdms: sync remote peer %s: %w", name, perr)
		}
		rp.latest = latestFPs(st)
		rp.latestStats = latestStatsMap(st)
		rp.lastSync = time.Now()
		rp.down.Store(false) // a successful probe resurrects a down peer
	}
	return retries, nil
}

// fetchJob names one stale replica to rebuild. When the mirror already
// holds a replica built from a known fingerprint, base carries that
// replica and have its fingerprint, so the worker can try a delta
// catch-up before falling back to a full scan; base is captured while
// the caller holds remoteMu, because workers must not read the mirror
// store concurrently with the drain loop's replica publishes.
type fetchJob struct {
	rp   *RemotePeer
	rel  string
	want remoteFP
	base *relation.Relation
	have remoteFP
	// ship, when set, tells the worker to refresh the relation by remote
	// sub-plan execution — streaming O(answers) bytes into a per-request
	// overlay replica — before considering the delta and scan paths.
	ship *shipSpec
}

// RemoteSyncCounts reports how many replica refreshes the network has
// performed by full relation scan, by delta catch-up, and by shipped
// sub-plan since creation — the observability the durability tests (and
// revere query's sync line) use to prove a restarted durable peer
// rejoined without re-scans, and the differential tests use to prove
// the ship path actually ran.
func (n *Network) RemoteSyncCounts() (scans, deltas, ships uint64) {
	return n.remoteScans.Load(), n.remoteDeltas.Load(), n.remoteShips.Load()
}

// applyDelta replays change records onto a clone of the replica built
// from fingerprint have, verifying every record's post-change (version,
// rows) fingerprint along the way, and returns the caught-up relation
// plus the fingerprint it landed on. Any inconsistency — wrong relation,
// non-advancing version, row count mismatch — returns an error and the
// caller falls back to a full scan: a delta must reconstruct exactly the
// serving peer's state or not be used at all.
func applyDelta(base *relation.Relation, rel string, have remoteFP, recs []relation.ChangeRecord) (*relation.Relation, remoteFP, error) {
	dst := base.Clone()
	fp := have
	for _, rec := range recs {
		if rec.Rel != rel {
			return nil, remoteFP{}, fmt.Errorf("delta for %s carries record of %s", rel, rec.Rel)
		}
		if rec.Ver <= fp.ver {
			return nil, remoteFP{}, fmt.Errorf("delta version %d does not advance past %d", rec.Ver, fp.ver)
		}
		switch rec.Op {
		case relation.ChangeInsert:
			if err := dst.Insert(rec.Tuple); err != nil {
				return nil, remoteFP{}, err
			}
		case relation.ChangeDelete:
			dst.Delete(rec.Tuple)
		default:
			return nil, remoteFP{}, fmt.Errorf("delta carries unexpected op %d", rec.Op)
		}
		if dst.Len() != rec.Rows {
			return nil, remoteFP{}, fmt.Errorf("delta replay left %d rows, record says %d", dst.Len(), rec.Rows)
		}
		fp = remoteFP{ver: rec.Ver, rows: rec.Rows}
	}
	return dst, fp, nil
}

// fetchReferenced brings every remote relation referenced by the
// rewritings up to date with the fingerprints syncRemotes just
// recorded. Stale replicas are re-scanned concurrently on a bounded
// worker pool (the PR 3 fan-out shape: a job channel, first
// non-absorbable error cancels the rest), each scan retried under the
// request's policy and streaming tuple batches into a fresh relation
// built through Insert so column statistics accrue and the cost-based
// planner orders joins from remote cardinalities. A failed attempt
// discards its partial relation — a replica is replaced only by a
// complete scan, atomically, from this goroutine, which also bumps
// the global snapshot fingerprint so plans compiled from the stale
// replica are recompiled, never reused.
//
// Peers already recorded in degraded are skipped (their replicas
// deliberately stay at the last-good snapshot), and when allowStale
// is set, a peer whose scan exhausts its retries mid-query joins them
// instead of failing the request — covering peers that die between
// the freshness probe and the fetch. Caller holds n.remoteMu.
//
// mode and shipBudget select the plan-shipping tier (ship.go): a stale
// relation the mode elects ships its atoms as bound sub-plans and the
// resulting partial replica is returned in ships (keyed by qualified
// name) for a per-request catalog overlay — never published to the
// mirror, whose replicas must stay complete. A ship the serving side
// rejects (ErrPlanUnsupported-class, including row-budget overflows)
// falls back to the delta/scan paths inside the same job. paths
// records, per refreshed relation, which path won.
func (n *Network) fetchReferenced(ctx context.Context, rws []cq.Query, pol RetryPolicy,
	budget *retryBudget, allowStale bool, degraded map[string]*DegradedPeer,
	mode ShipMode, shipBudget uint64) (retries int, ships map[string]*relation.Relation, paths []SyncPath, err error) {
	var jobs []fetchJob
	queued := make(map[string]bool)
	for _, rw := range rws {
		for _, a := range rw.Body {
			peer, rel := glav.SplitQualified(a.Pred)
			if peer == "" || queued[a.Pred] {
				continue
			}
			rp := n.remotes[peer]
			if rp == nil {
				continue // local peer: the global snapshot already has it
			}
			if degraded[peer] != nil {
				continue // degraded peer: its last-good replicas serve as-is
			}
			queued[a.Pred] = true
			want, known := rp.latest[rel]
			if !known {
				continue // mirror schema exists but remote serves no data yet
			}
			job := fetchJob{rp: rp, rel: rel, want: want}
			if got, ok := rp.fetched[rel]; ok {
				if got == want {
					if rp.pushFresh[rel] {
						// The push path refreshed this replica since the last
						// query referenced it: report it, once.
						delete(rp.pushFresh, rel)
						paths = append(paths, SyncPath{Peer: peer, Rel: rel, Path: "push"})
					}
					continue // replica already matches the remote fingerprint
				}
				delete(rp.pushFresh, rel) // stale replica: any push-fresh mark predates it
				// Stale but known: hand the worker the current replica and
				// its fingerprint so it can catch up from the serving peer's
				// change log instead of re-scanning.
				job.base, job.have = rp.mirror.Store.Get(rel), got
			}
			jobs = append(jobs, job)
		}
	}
	if len(jobs) == 0 {
		sort.Slice(paths, func(i, j int) bool {
			if paths[i].Peer != paths[j].Peer {
				return paths[i].Peer < paths[j].Peer
			}
			return paths[i].Rel < paths[j].Rel
		})
		return 0, nil, paths, nil
	}
	n.planShips(rws, jobs, mode, shipBudget, degraded)

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type fetchResult struct {
		job fetchJob
		rel *relation.Relation
		// got is the fingerprint the new replica was built to — want for
		// a scan, possibly fresher for a delta that caught records written
		// after the State probe.
		got remoteFP
		// viaDelta marks a replica rebuilt from change records rather than
		// a full scan (feeds the RemoteSyncCounts observability).
		viaDelta bool
		// overlay marks a partial replica built by shipped sub-plan
		// execution: it goes into the per-request ships overlay, never the
		// mirror store.
		overlay bool
		err     error
	}
	work := make(chan fetchJob, len(jobs))
	for _, job := range jobs {
		work <- job
	}
	close(work)
	results := make(chan fetchResult)
	var retried atomic.Int64
	for w := 0; w < fetchParallelism(len(jobs)); w++ {
		go func() {
			for job := range work {
				if err := fctx.Err(); err != nil {
					results <- fetchResult{job: job, err: err}
					continue
				}
				if job.rp.down.Load() {
					// The peer went down while this job queued (another of
					// its scans exhausted retries): don't spend ours too.
					results <- fetchResult{job: job,
						err: fmt.Errorf("%w: peer %s marked down", ErrPeerUnreachable, job.rp.name)}
					continue
				}
				if job.ship != nil {
					// Plan shipping first: execute the relation's bound
					// sub-plans at the serving peer and reassemble a partial
					// replica from the answers. A rejection the serving side
					// types as ErrPlanUnsupported — old server, uncompilable
					// plan, row-budget overflow — falls through to the mirror
					// paths below on the same connection; any other failure is
					// the job's failure, like a failed scan.
					dst, r, serr := n.runShip(fctx, pol, budget, job)
					retried.Add(int64(r))
					if serr == nil {
						results <- fetchResult{job: job, rel: dst, got: job.want, overlay: true}
						continue
					}
					if !errors.Is(serr, ErrPlanUnsupported) {
						results <- fetchResult{job: job, err: serr}
						continue
					}
				}
				// Cheap path first: when the replica's last-synced fingerprint
				// is known and the transport can ship change records, catch up
				// from the serving peer's log instead of re-reading the
				// relation. A transport failure here is the job's failure (a
				// scan against the same peer would fare no better); an
				// uncovered or inconsistent delta falls through to the scan.
				dst, got, viaDelta, r, err := n.tryDelta(fctx, pol, budget, job)
				retried.Add(int64(r))
				if err != nil {
					results <- fetchResult{job: job, err: err}
					continue
				}
				if viaDelta {
					results <- fetchResult{job: job, rel: dst, got: got, viaDelta: true}
					continue
				}
				r, err = retryOp(fctx, pol, budget, func(actx context.Context) error {
					// Fresh destination per attempt: a dropped scan's partial
					// tuples must never leak into the retry.
					dst = relation.New(job.rp.mirror.Schema(job.rel))
					return job.rp.tr.Scan(actx, job.rp.name, job.rel, func(batch []relation.Tuple) error {
						for _, t := range batch {
							if err := dst.Insert(t); err != nil {
								return err
							}
						}
						return nil
					})
				})
				retried.Add(int64(r))
				results <- fetchResult{job: job, rel: dst, got: job.want, err: err}
			}
		}()
	}
	// Every queued job yields exactly one result, so draining is
	// deadlock-free even when an error cancels the stragglers.
	var firstErr error
	for pending := len(jobs); pending > 0; pending-- {
		res := <-results
		if res.err != nil {
			if allowStale && degradable(ctx, res.err) {
				name := res.job.rp.name
				if degraded[name] == nil {
					degraded[name] = &DegradedPeer{Peer: name, Err: res.err, LastSync: res.job.rp.lastSync}
					n.markDown(res.job.rp, res.err)
				}
				continue // last-good replica keeps serving; don't cancel the rest
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("pdms: fetch %s.%s: %w", res.job.rp.name, res.job.rel, res.err)
				cancel() // abort the remaining scans, PR 3 style
			}
			continue
		}
		if firstErr == nil {
			if res.overlay {
				if ships == nil {
					ships = make(map[string]*relation.Relation)
				}
				ships[glav.QualifiedName(res.job.rp.name, res.job.rel)] = res.rel
				n.remoteShips.Add(1)
				paths = append(paths, SyncPath{Peer: res.job.rp.name, Rel: res.job.rel, Path: "ship"})
				continue
			}
			res.job.rp.mirror.Store.Put(res.rel)
			res.job.rp.fetched[res.job.rel] = res.got
			if res.viaDelta {
				n.remoteDeltas.Add(1)
				paths = append(paths, SyncPath{Peer: res.job.rp.name, Rel: res.job.rel, Path: "delta"})
			} else {
				n.remoteScans.Add(1)
				paths = append(paths, SyncPath{Peer: res.job.rp.name, Rel: res.job.rel, Path: "scan"})
			}
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].Peer != paths[j].Peer {
			return paths[i].Peer < paths[j].Peer
		}
		return paths[i].Rel < paths[j].Rel
	})
	return int(retried.Load()), ships, paths, firstErr
}

// tryDelta attempts the delta catch-up for one stale replica. used is
// false (with a nil error) when the cheap path does not apply — the
// transport cannot ship deltas, the replica has no known fingerprint,
// the serving peer's log no longer covers the range, or the records
// fail their per-step fingerprint verification — and the caller falls
// back to a full scan. A transport error is returned as err: a scan
// against the same unreachable peer would only spend more retries, so
// the failure flows into the request's ordinary degradation handling.
func (n *Network) tryDelta(ctx context.Context, pol RetryPolicy, budget *retryBudget,
	job fetchJob) (dst *relation.Relation, got remoteFP, used bool, retries int, err error) {
	dt, can := job.rp.tr.(DeltaTransport)
	if !can || job.base == nil {
		return nil, remoteFP{}, false, 0, nil
	}
	var recs []relation.ChangeRecord
	var covered bool
	retries, err = retryOp(ctx, pol, budget, func(actx context.Context) error {
		var derr error
		recs, covered, derr = dt.Delta(actx, job.rp.name, job.rel, job.have.ver)
		return derr
	})
	if err != nil {
		return nil, remoteFP{}, false, retries, err
	}
	if !covered {
		return nil, remoteFP{}, false, retries, nil
	}
	dst, got, aerr := applyDelta(job.base, job.rel, job.have, recs)
	if aerr != nil || got.ver < job.want.ver {
		// Inconsistent records, or a catch-up that fell short of the
		// fingerprint the State probe promised: the scan is the truth.
		return nil, remoteFP{}, false, retries, nil
	}
	return dst, got, true, retries, nil
}

// invalidateRemotesLocked drops every replica fingerprint so the next
// query re-fetches whatever it references, InvalidateCaches's
// out-of-band hammer extended to the distributed tier. Caller holds
// n.remoteMu.
func (n *Network) invalidateRemotesLocked() {
	for _, rp := range n.remotes {
		rp.fetched = make(map[string]remoteFP)
	}
}
