package pdms

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
	"repro/internal/view"
)

// chainNetwork builds Berkeley → MIT → Oxford, each with a course
// relation in its own vocabulary, with GAV mappings in both directions
// between adjacent peers (the paper's Fig. 2 arrows).
//
//	berkeley: course(title, size)
//	mit:      subject(name, enrollment)
//	oxford:   offering(label, seats)
func chainNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	b := NewPeer("berkeley", relation.NewSchema("course", relation.Attr("title"), relation.IntAttr("size")))
	m := NewPeer("mit", relation.NewSchema("subject", relation.Attr("name"), relation.IntAttr("enrollment")))
	o := NewPeer("oxford", relation.NewSchema("offering", relation.Attr("label"), relation.IntAttr("seats")))
	for _, p := range []*Peer{b, m, o} {
		if err := n.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Insert("course", relation.Tuple{relation.SV("Ancient History"), relation.IV(40)}))
	must(b.Insert("course", relation.Tuple{relation.SV("Databases"), relation.IV(60)}))
	must(m.Insert("subject", relation.Tuple{relation.SV("AI"), relation.IV(80)}))
	must(o.Insert("offering", relation.Tuple{relation.SV("Greek Philosophy"), relation.IV(15)}))

	addGAV := func(id, srcPeer, srcQ, tgtPeer, tgtQ string) {
		t.Helper()
		mp := glav.MustNew(id, srcPeer, cq.MustParse(srcQ), tgtPeer, cq.MustParse(tgtQ))
		if !mp.IsGAV() {
			t.Fatalf("mapping %s should be GAV", id)
		}
		must(n.AddMapping(mp))
	}
	// Berkeley data visible at MIT and vice versa.
	addGAV("b2m", "berkeley", "m(T, S) :- course(T, S)", "mit", "m(T, S) :- subject(T, S)")
	addGAV("m2b", "mit", "m(T, S) :- subject(T, S)", "berkeley", "m(T, S) :- course(T, S)")
	// MIT ↔ Oxford.
	addGAV("m2o", "mit", "m(T, S) :- subject(T, S)", "oxford", "m(T, S) :- offering(T, S)")
	addGAV("o2m", "oxford", "m(T, S) :- offering(T, S)", "mit", "m(T, S) :- subject(T, S)")
	return n
}

func TestLocalAnswer(t *testing.T) {
	n := chainNetwork(t)
	r, err := n.LocalAnswer("berkeley", cq.MustParse("q(T) :- course(T, S)"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("local answers = %v", r.Rows())
	}
	if _, err := n.LocalAnswer("nope", cq.MustParse("q(T) :- course(T, S)")); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestTransitiveAnswer(t *testing.T) {
	n := chainNetwork(t)
	// Query at Oxford, in Oxford's vocabulary, should see all three
	// peers' courses through the mapping chain.
	res, err := n.Answer("oxford", cq.MustParse("q(L) :- offering(L, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 4 {
		t.Errorf("transitive answers = %v (rewritings %v)", res.Answers.Rows(), res.Rewritings)
	}
	if res.Stats.PeersTouched != 3 {
		t.Errorf("PeersTouched = %d, want 3", res.Stats.PeersTouched)
	}
	if res.Stats.Kept < 3 {
		t.Errorf("Kept = %d, want >= 3 (local + 2 remote)", res.Stats.Kept)
	}
}

func TestAnswerDepthBound(t *testing.T) {
	n := chainNetwork(t)
	// Depth 1 from Oxford reaches MIT but not Berkeley.
	res, err := n.Answer("oxford", cq.MustParse("q(L) :- offering(L, S)"), ReformOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 2 {
		t.Errorf("depth-1 answers = %v", res.Answers.Rows())
	}
}

func TestAnswerQueryInLocalVocabularyWithConstant(t *testing.T) {
	n := chainNetwork(t)
	res, err := n.Answer("mit", cq.MustParse("q(S) :- subject('Databases', S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 1 || res.Answers.Row(0)[0] != relation.IV(60) {
		t.Errorf("answers = %v", res.Answers.Rows())
	}
}

func TestAnswerUnknownPeerAndRelation(t *testing.T) {
	n := chainNetwork(t)
	if _, err := n.Answer("nowhere", cq.MustParse("q(X) :- r(X)"), ReformOptions{}); err == nil {
		t.Error("unknown peer should fail")
	}
	if _, err := n.Answer("mit", cq.MustParse("q(T) :- course(T, S)"), ReformOptions{}); err == nil {
		t.Error("query outside peer schema should fail")
	}
}

func TestVisitedPruningPreventsCycles(t *testing.T) {
	n := chainNetwork(t)
	// The b↔m mappings form a cycle; with visited pruning the search
	// terminates and still finds all answers.
	res, err := n.Answer("berkeley", cq.MustParse("q(T) :- course(T, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 4 {
		t.Errorf("answers = %v", res.Answers.Rows())
	}
	if res.Stats.PrunedVisited == 0 {
		t.Error("expected some visited pruning on a cyclic graph")
	}
}

func TestNoPruningStillSoundWithSmallDepth(t *testing.T) {
	n := chainNetwork(t)
	with, err := n.Answer("mit", cq.MustParse("q(T) :- subject(T, S)"), ReformOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	without, err := n.Answer("mit", cq.MustParse("q(T) :- subject(T, S)"),
		ReformOptions{MaxDepth: 3, NoVisitedPruning: true, NoContainmentPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !with.Answers.Equal(without.Answers) {
		t.Errorf("pruning changed answers: %v vs %v", with.Answers.Rows(), without.Answers.Rows())
	}
	if without.Stats.Explored <= with.Stats.Explored {
		t.Errorf("pruning should reduce exploration: with=%d without=%d",
			with.Stats.Explored, without.Stats.Explored)
	}
}

func TestContainmentPruningReducesRewritings(t *testing.T) {
	n := chainNetwork(t)
	with, err := n.Answer("mit", cq.MustParse("q(T) :- subject(T, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := n.Answer("mit", cq.MustParse("q(T) :- subject(T, S)"),
		ReformOptions{NoContainmentPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.Kept > without.Stats.Kept {
		t.Errorf("containment pruning increased rewritings: %d vs %d",
			with.Stats.Kept, without.Stats.Kept)
	}
	if !with.Answers.Equal(without.Answers) {
		t.Error("containment pruning changed answers")
	}
}

func TestJoinAcrossPeers(t *testing.T) {
	// A query with a join: MIT lists instructors separately.
	n := NewNetwork()
	uw := NewPeer("uw",
		relation.NewSchema("course", relation.Attr("title"), relation.Attr("instr")),
		relation.NewSchema("person", relation.Attr("name"), relation.Attr("email")))
	ro := NewPeer("rome",
		relation.NewSchema("corso", relation.Attr("titolo"), relation.Attr("docente")))
	if err := n.AddPeer(uw); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(ro); err != nil {
		t.Fatal(err)
	}
	if err := uw.Insert("person", relation.Tuple{relation.SV("rossi"), relation.SV("rossi@roma.it")}); err != nil {
		t.Fatal(err)
	}
	if err := ro.Insert("corso", relation.Tuple{relation.SV("Storia"), relation.SV("rossi")}); err != nil {
		t.Fatal(err)
	}
	m := glav.MustNew("r2u", "rome", cq.MustParse("m(T, I) :- corso(T, I)"),
		"uw", cq.MustParse("m(T, I) :- course(T, I)"))
	if err := n.AddMapping(m); err != nil {
		t.Fatal(err)
	}
	res, err := n.Answer("uw", cq.MustParse("q(T, E) :- course(T, I), person(I, E)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 1 {
		t.Fatalf("answers = %v", res.Answers.Rows())
	}
	row := res.Answers.Row(0)
	if row[0] != relation.SV("Storia") || row[1] != relation.SV("rossi@roma.it") {
		t.Errorf("row = %v", row)
	}
}

func TestLAVMappingRewriting(t *testing.T) {
	// Source peer's stored relation is a view over target's schema:
	// archive.cs_course(T,S) ⊆ q(T,S) :- course(T,S,D), dept-constant.
	n := NewNetwork()
	hub := NewPeer("hub", relation.NewSchema("course",
		relation.Attr("title"), relation.IntAttr("size"), relation.Attr("dept")))
	arch := NewPeer("archive", relation.NewSchema("cs_course",
		relation.Attr("title"), relation.IntAttr("size")))
	if err := n.AddPeer(hub); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(arch); err != nil {
		t.Fatal(err)
	}
	if err := arch.Insert("cs_course", relation.Tuple{relation.SV("Compilers"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Insert("course", relation.Tuple{relation.SV("Databases"), relation.IV(60), relation.SV("cs")}); err != nil {
		t.Fatal(err)
	}
	m := glav.MustNew("a2h", "archive", cq.MustParse("m(T, S) :- cs_course(T, S)"),
		"hub", cq.MustParse("m(T, S) :- course(T, S, D)"))
	if !m.IsLAV() {
		t.Fatal("mapping should be LAV")
	}
	if err := n.AddMapping(m); err != nil {
		t.Fatal(err)
	}
	res, err := n.Answer("hub", cq.MustParse("q(T, S) :- course(T, S, D)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 2 {
		t.Errorf("LAV answers = %v (rewritings %v)", res.Answers.Rows(), res.Rewritings)
	}
	// Ablation: disabling LAV loses the archived course.
	res2, err := n.Answer("hub", cq.MustParse("q(T, S) :- course(T, S, D)"), ReformOptions{NoLAV: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answers.Len() != 1 {
		t.Errorf("NoLAV answers = %v", res2.Answers.Rows())
	}
}

func TestNetworkValidation(t *testing.T) {
	n := NewNetwork()
	p := NewPeer("a", relation.NewSchema("r", relation.Attr("x")))
	if err := n.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(NewPeer("a")); err == nil {
		t.Error("duplicate peer should fail")
	}
	if _, err := glav.New("self", "a", cq.MustParse("m(X) :- r(X)"), "a", cq.MustParse("m(X) :- r(X)")); err == nil {
		t.Error("self-mapping should fail")
	}
	b := NewPeer("b", relation.NewSchema("s", relation.Attr("y")))
	if err := n.AddPeer(b); err != nil {
		t.Fatal(err)
	}
	bad := glav.MustNew("bad", "a", cq.MustParse("m(X) :- nope(X)"), "b", cq.MustParse("m(X) :- s(X)"))
	if err := n.AddMapping(bad); err == nil {
		t.Error("mapping over unknown relation should fail")
	}
	bad2 := glav.MustNew("bad2", "a", cq.MustParse("m(X) :- r(X)"), "b", cq.MustParse("m(X) :- nope(X)"))
	if err := n.AddMapping(bad2); err == nil {
		t.Error("mapping over unknown target relation should fail")
	}
	badArity := glav.MustNew("bad3", "a", cq.MustParse("m(X, Y) :- r(X, Y)"),
		"b", cq.MustParse("m(X, Y) :- s(X, Y)"))
	if err := n.AddMapping(badArity); err == nil {
		t.Error("atom/relation arity mismatch should fail at registration")
	}
	if n.NumPeers() != 2 {
		t.Errorf("NumPeers = %d", n.NumPeers())
	}
}

func TestPeerBasics(t *testing.T) {
	p := NewPeer("x", relation.NewSchema("r", relation.Attr("a")))
	p.AddSchema(relation.NewSchema("s", relation.Attr("b")))
	if len(p.RelationNames()) != 2 {
		t.Errorf("RelationNames = %v", p.RelationNames())
	}
	if err := p.Insert("missing", relation.Tuple{relation.SV("v")}); err == nil {
		t.Error("insert into missing relation should fail")
	}
	if p.Schema("r").Name != "r" {
		t.Error("Schema lookup failed")
	}
}

func TestMappingDegreeLinear(t *testing.T) {
	n := chainNetwork(t)
	deg := n.MappingDegree()
	// Chain topology: middle peer touches 4 mappings, ends 2 each.
	if deg["mit"] != 4 || deg["berkeley"] != 2 || deg["oxford"] != 2 {
		t.Errorf("degrees = %v", deg)
	}
	if n.NumMappings() != 4 {
		t.Errorf("NumMappings = %d", n.NumMappings())
	}
}

func TestSubscriptionAndPublish(t *testing.T) {
	n := chainNetwork(t)
	// Oxford materializes Berkeley's courses locally.
	sub, err := n.Subscribe("oxford", "berkeley_courses",
		cq.MustParse("v(T, S) :- berkeley.course(T, S)"))
	if err != nil {
		t.Fatal(err)
	}
	if sub.MV.Extent.Len() != 2 {
		t.Fatalf("initial extent = %v", sub.MV.Extent.Rows())
	}
	stats, err := n.InsertAndPublish("berkeley", "course",
		relation.Tuple{relation.SV("Linear Algebra"), relation.IV(120)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViewsTouched != 1 || stats.TuplesShipped != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if sub.MV.Extent.Len() != 3 {
		t.Errorf("extent after publish = %v", sub.MV.Extent.Rows())
	}
	// Unrelated update ships nothing.
	stats2, err := n.InsertAndPublish("mit", "subject",
		relation.Tuple{relation.SV("Robotics"), relation.IV(45)})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ViewsTouched != 0 || stats2.TuplesShipped != 0 {
		t.Errorf("unrelated publish stats = %+v", stats2)
	}
	// Deletes propagate too.
	_, err = n.Publish("berkeley", "course", view.Updategram{
		Relation: "course",
		Deletes:  []relation.Tuple{{relation.SV("Databases"), relation.IV(60)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.MV.Extent.Len() != 2 {
		t.Errorf("extent after delete = %v", sub.MV.Extent.Rows())
	}
}

func TestSubscribeValidation(t *testing.T) {
	n := chainNetwork(t)
	if _, err := n.Subscribe("nowhere", "v", cq.MustParse("v(T) :- berkeley.course(T, S)")); err == nil {
		t.Error("unknown host peer should fail")
	}
	if _, err := n.Subscribe("mit", "v", cq.MustParse("v(T) :- nowhere.rel(T)")); err == nil {
		t.Error("unknown base relation should fail")
	}
	if _, err := n.Publish("berkeley", "nope", view.Updategram{}); err == nil {
		t.Error("publish to unknown relation should fail")
	}
	if _, err := n.Publish("nowhere", "r", view.Updategram{}); err == nil {
		t.Error("publish at unknown peer should fail")
	}
	if len(n.Subscriptions()) != 0 {
		t.Error("failed subscriptions must not register")
	}
}

func TestRemovePeer(t *testing.T) {
	n := chainNetwork(t)
	// Oxford materializes Berkeley's courses; MIT then leaves.
	if _, err := n.Subscribe("oxford", "bk",
		cq.MustParse("v(T, S) :- berkeley.course(T, S)")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Subscribe("mit", "hosted_at_mit",
		cq.MustParse("v(T, S) :- berkeley.course(T, S)")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Subscribe("oxford", "over_mit",
		cq.MustParse("v(T, S) :- mit.subject(T, S)")); err != nil {
		t.Fatal(err)
	}
	if err := n.RemovePeer("mit"); err != nil {
		t.Fatal(err)
	}
	if err := n.RemovePeer("mit"); err == nil {
		t.Error("double removal should fail")
	}
	if n.NumPeers() != 2 || n.NumMappings() != 0 {
		t.Errorf("peers=%d mappings=%d after removing the chain's middle", n.NumPeers(), n.NumMappings())
	}
	// Only the oxford-hosted subscription over berkeley survives.
	if len(n.Subscriptions()) != 1 || n.Subscriptions()[0].MV.View.Name != "bk" {
		t.Errorf("subscriptions = %v", n.Subscriptions())
	}
	// Queries still answer locally (graceful degradation: the chain is
	// severed, remote data unreachable).
	res, err := n.Answer("oxford", cq.MustParse("q(L) :- offering(L, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 1 {
		t.Errorf("post-removal answers = %v", res.Answers.Rows())
	}
	// Berkeley unaffected locally.
	res2, err := n.Answer("berkeley", cq.MustParse("q(T) :- course(T, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answers.Len() != 2 {
		t.Errorf("berkeley answers = %v", res2.Answers.Rows())
	}
}

func TestRejoinAfterRemoval(t *testing.T) {
	n := chainNetwork(t)
	if err := n.RemovePeer("mit"); err != nil {
		t.Fatal(err)
	}
	// MIT rejoins with the same schema and remaps to Oxford only.
	m := NewPeer("mit", relation.NewSchema("subject",
		relation.Attr("name"), relation.IntAttr("enrollment")))
	if err := n.AddPeer(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("subject", relation.Tuple{relation.SV("Rebooted"), relation.IV(5)}); err != nil {
		t.Fatal(err)
	}
	mp := glav.MustNew("m2o2", "mit", cq.MustParse("m(T, S) :- subject(T, S)"),
		"oxford", cq.MustParse("m(T, S) :- offering(T, S)"))
	if err := n.AddMapping(mp); err != nil {
		t.Fatal(err)
	}
	res, err := n.Answer("oxford", cq.MustParse("q(L) :- offering(L, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Oxford's own + rejoined MIT's course (Berkeley unreachable: its
	// only links went through the old MIT mappings).
	if res.Answers.Len() != 2 {
		t.Errorf("answers after rejoin = %v", res.Answers.Rows())
	}
}

func TestGlobalDBQualification(t *testing.T) {
	n := chainNetwork(t)
	db := n.GlobalDB()
	if db.Get("berkeley.course") == nil || db.Get("mit.subject") == nil {
		t.Errorf("qualified relations missing: %v", db.Names())
	}
	if db.Get("berkeley.course").Len() != 2 {
		t.Errorf("berkeley.course rows = %d", db.Get("berkeley.course").Len())
	}
}

func TestMediatorPeer(t *testing.T) {
	// §3.1: "peers can serve as data providers, logical mediators, or
	// mere query nodes." The mediator stores nothing; two providers map
	// into its schema and it maps back out, so providers see each other
	// through it — a local data-integration system inside the PDMS.
	n := NewNetwork()
	mediator := NewPeer("mediator", relation.NewSchema("course",
		relation.Attr("title"), relation.Attr("instructor")))
	uw := NewPeer("uw", relation.NewSchema("klass",
		relation.Attr("name"), relation.Attr("teacher")))
	rome := NewPeer("rome", relation.NewSchema("corso",
		relation.Attr("titolo"), relation.Attr("docente")))
	for _, p := range []*Peer{mediator, uw, rome} {
		if err := n.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := uw.Insert("klass", relation.Tuple{relation.SV("Databases"), relation.SV("halevy")}); err != nil {
		t.Fatal(err)
	}
	if err := rome.Insert("corso", relation.Tuple{relation.SV("Storia"), relation.SV("rossi")}); err != nil {
		t.Fatal(err)
	}
	addBoth := func(id, provider, rel string) {
		t.Helper()
		in := glav.MustNew(id+"_in", provider,
			cq.MustParse("m(T, I) :- "+rel+"(T, I)"),
			"mediator", cq.MustParse("m(T, I) :- course(T, I)"))
		out := glav.MustNew(id+"_out", "mediator",
			cq.MustParse("m(T, I) :- course(T, I)"),
			provider, cq.MustParse("m(T, I) :- "+rel+"(T, I)"))
		if err := n.AddMapping(in); err != nil {
			t.Fatal(err)
		}
		if err := n.AddMapping(out); err != nil {
			t.Fatal(err)
		}
	}
	addBoth("uw", "uw", "klass")
	addBoth("rome", "rome", "corso")

	// The mediator (a pure query node: it stores nothing) sees both.
	res, err := n.Answer("mediator", cq.MustParse("q(T, I) :- course(T, I)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 2 {
		t.Errorf("mediator answers = %v", res.Answers.Rows())
	}
	// Each provider sees the other through the mediator.
	res2, err := n.Answer("uw", cq.MustParse("q(T) :- klass(T, I)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answers.Len() != 2 {
		t.Errorf("uw answers = %v", res2.Answers.Rows())
	}
	res3, err := n.Answer("rome", cq.MustParse("q(T) :- corso(T, I)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Answers.Len() != 2 {
		t.Errorf("rome answers = %v", res3.Answers.Rows())
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := chainNetwork(t)
	names := n.PeerNames()
	if len(names) != 3 || names[0] != "berkeley" {
		t.Errorf("PeerNames = %v", names)
	}
	if len(n.Mappings()) != 4 {
		t.Errorf("Mappings = %d", len(n.Mappings()))
	}
	err := &UnknownPeerError{Name: "x"}
	if err.Error() != "pdms: unknown peer x" {
		t.Errorf("Error = %q", err.Error())
	}
}

func TestMaxRewritingsCap(t *testing.T) {
	n := chainNetwork(t)
	res, err := n.Answer("mit", cq.MustParse("q(T) :- subject(T, S)"),
		ReformOptions{MaxRewritings: 1, NoContainmentPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Kept > 1 {
		t.Errorf("MaxRewritings ignored: kept %d", res.Stats.Kept)
	}
	// Capped search still yields at least the local answers.
	if res.Answers.Len() == 0 {
		t.Error("capped search lost all answers")
	}
}
