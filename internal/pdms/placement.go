package pdms

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// This file implements the data-placement side of §3.1.2: "Our ultimate
// goal is to materialize the best views at each peer to allow answering
// queries most efficiently, given network constraints." A simple cost
// model charges remote reads more than local ones; a greedy optimizer
// picks which remote relations each peer should replicate, and query
// execution can then read the local copies (kept fresh by updategrams).

// CostModel prices tuple reads.
type CostModel struct {
	// RemoteFactor is the cost of reading one remote tuple relative to a
	// local one (default 10).
	RemoteFactor float64
}

func (c CostModel) remote() float64 {
	if c.RemoteFactor <= 0 {
		return 10
	}
	return c.RemoteFactor
}

// WorkloadQuery is one recurring query in a peer's workload.
type WorkloadQuery struct {
	Peer  string
	Query cq.Query
	Freq  float64
}

// EstimateCost reformulates q at peer and prices the tuples its
// rewritings read: local relations (or local materialized copies) cost
// 1 per tuple, remote relations cost RemoteFactor per tuple.
func (n *Network) EstimateCost(peer string, q cq.Query, cm CostModel) (float64, error) {
	// Read-side operation: reformulation reads peer schemas and the
	// pricing walk reads stores, both of which a concurrent Query
	// prepare may be syncing for remote mirrors.
	if len(n.remotes) > 0 {
		n.remoteMu.RLock()
		defer n.remoteMu.RUnlock()
	}
	rf := NewReformulator(n, ReformOptions{})
	rws, _, err := rf.Reformulate(context.Background(), peer, q)
	if err != nil {
		return 0, err
	}
	copies := n.localCopies(peer)
	cost := 0.0
	for _, rw := range rws {
		for _, a := range rw.Body {
			pn, rel := glav.SplitQualified(a.Pred)
			owner := n.Peer(pn)
			if owner == nil {
				continue
			}
			rows := 0
			if r := owner.Store.Get(rel); r != nil {
				rows = r.Len()
			}
			if pn == peer || copies[a.Pred] != nil {
				cost += float64(rows)
			} else {
				cost += float64(rows) * cm.remote()
			}
		}
	}
	return cost, nil
}

// localCopies returns, per qualified relation name, an identity-view
// subscription hosted at the peer (if any).
func (n *Network) localCopies(peer string) map[string]*Subscription {
	out := make(map[string]*Subscription)
	for _, sub := range n.subs {
		if sub.AtPeer != peer {
			continue
		}
		def := sub.MV.View.Def
		if len(def.Body) != 1 {
			continue
		}
		if len(def.HeadVars) != len(def.Body[0].Args) {
			continue
		}
		identity := true
		for i, arg := range def.Body[0].Args {
			if !arg.IsVar || arg.Var != def.HeadVars[i] {
				identity = false
				break
			}
		}
		if identity {
			out[def.Body[0].Pred] = sub
		}
	}
	return out
}

// MaterializeRemote places a full copy of srcPeer.rel at atPeer (an
// identity view kept fresh by updategrams).
func (n *Network) MaterializeRemote(atPeer, srcPeer, rel string) (*Subscription, error) {
	src := n.Peer(srcPeer)
	if src == nil {
		return nil, errUnknownPeer(srcPeer)
	}
	sch := src.Schema(rel)
	if sch.Name == "" {
		return nil, fmt.Errorf("pdms: peer %s has no relation %q", srcPeer, rel)
	}
	vars := make([]cq.Term, sch.Arity())
	head := make([]string, sch.Arity())
	for i := range vars {
		v := "C" + strconv.Itoa(i)
		vars[i] = cq.V(v)
		head[i] = v
	}
	def := cq.Query{HeadPred: "copy", HeadVars: head,
		Body: []cq.Atom{{Pred: glav.QualifiedName(srcPeer, rel), Args: vars}}}
	return n.Subscribe(atPeer, fmt.Sprintf("copy_%s_%s_at_%s", srcPeer, rel, atPeer), def)
}

// Placement is one chosen replication.
type Placement struct {
	AtPeer  string
	Source  string // qualified relation
	Benefit float64
}

// PlaceViews greedily chooses up to budget replications that most reduce
// the workload's estimated cost, materializes them, and returns the
// choices in decreasing benefit order.
func (n *Network) PlaceViews(workload []WorkloadQuery, budget int, cm CostModel) ([]Placement, error) {
	type key struct{ at, src string }
	benefit := make(map[key]float64)
	for _, wq := range workload {
		rf := NewReformulator(n, ReformOptions{})
		rws, _, err := rf.Reformulate(context.Background(), wq.Peer, wq.Query)
		if err != nil {
			return nil, err
		}
		for _, rw := range rws {
			for _, a := range rw.Body {
				pn, rel := glav.SplitQualified(a.Pred)
				if pn == wq.Peer {
					continue
				}
				owner := n.Peer(pn)
				if owner == nil {
					continue
				}
				rows := 0
				if r := owner.Store.Get(rel); r != nil {
					rows = r.Len()
				}
				benefit[key{wq.Peer, a.Pred}] += wq.Freq * float64(rows) * (cm.remote() - 1)
			}
		}
	}
	var cands []Placement
	for k, b := range benefit {
		cands = append(cands, Placement{AtPeer: k.at, Source: k.src, Benefit: b})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Benefit != cands[j].Benefit {
			return cands[i].Benefit > cands[j].Benefit
		}
		if cands[i].AtPeer != cands[j].AtPeer {
			return cands[i].AtPeer < cands[j].AtPeer
		}
		return cands[i].Source < cands[j].Source
	})
	if budget < len(cands) {
		cands = cands[:budget]
	}
	for _, p := range cands {
		srcPeer, rel := glav.SplitQualified(p.Source)
		if _, err := n.MaterializeRemote(p.AtPeer, srcPeer, rel); err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// AnswerUsingCopies answers q at peer, reading local materialized copies
// instead of remote relations where available. Copies are kept fresh by
// Publish, so answers match Answer() as long as all updates flow through
// updategrams.
func (n *Network) AnswerUsingCopies(peer string, q cq.Query, opts ReformOptions) (*AnswerResult, error) {
	rf := NewReformulator(n, opts)
	rws, stats, err := rf.Reformulate(context.Background(), peer, q)
	if err != nil {
		return nil, err
	}
	copies := n.localCopies(peer)
	db := n.GlobalDB()
	// Register copy extents and rewrite atoms to read them.
	for qualified, sub := range copies {
		copyName := "@copy." + peer + "." + qualified
		ext := relation.New(relation.Schema{Name: copyName, Attrs: sub.MV.Extent.Schema.Attrs})
		for _, row := range sub.MV.Extent.Rows() {
			if err := ext.Insert(row); err != nil {
				return nil, err
			}
		}
		db.Put(ext)
	}
	rewritten := make([]cq.Query, len(rws))
	for i, rw := range rws {
		c := rw.Clone()
		for j := range c.Body {
			if _, ok := copies[c.Body[j].Pred]; ok {
				pn, _ := glav.SplitQualified(c.Body[j].Pred)
				if pn != peer {
					c.Body[j].Pred = "@copy." + peer + "." + c.Body[j].Pred
				}
			}
		}
		rewritten[i] = c
	}
	var answers *relation.Relation
	if len(rewritten) > 0 {
		answers, err = cq.EvalUnion(db, rewritten)
		if err != nil {
			return nil, err
		}
	} else {
		// Same typed head schema the non-empty path produces.
		answers = relation.New(cq.HeadSchemaFor(n.Peer(peer).Store, q))
	}
	return &AnswerResult{Answers: answers, Rewritings: rewritten, Stats: *stats}, nil
}
