package pdms

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
	"repro/internal/store"
)

// swapTransport delegates to an inner DeltaTransport the test replaces,
// simulating a served node that restarts behind one long-lived
// coordinator: the Network keeps its transport handle while the peer
// (and the Loopback serving it) is torn down and rebuilt from disk.
type swapTransport struct {
	mu    sync.Mutex
	inner DeltaTransport
}

func (s *swapTransport) get() DeltaTransport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

func (s *swapTransport) swap(t DeltaTransport) {
	s.mu.Lock()
	s.inner = t
	s.mu.Unlock()
}

func (s *swapTransport) State(ctx context.Context, peer string) (PeerState, error) {
	return s.get().State(ctx, peer)
}

func (s *swapTransport) Schemas(ctx context.Context, peer string) ([]relation.Schema, error) {
	return s.get().Schemas(ctx, peer)
}

func (s *swapTransport) Scan(ctx context.Context, peer, rel string, deliver func([]relation.Tuple) error) error {
	return s.get().Scan(ctx, peer, rel, deliver)
}

func (s *swapTransport) Delta(ctx context.Context, peer, rel string, since uint64) ([]relation.ChangeRecord, bool, error) {
	return s.get().Delta(ctx, peer, rel, since)
}

func (s *swapTransport) Close() error { return s.get().Close() }

// subjectRow builds a (name, enrollment) tuple for the durable peer.
func subjectRow(name string, enrollment int64) relation.Tuple {
	return relation.Tuple{relation.SV(name), relation.IV(enrollment)}
}

// TestDurablePeerRestartInvisibleThenDeltaSync is the loopback half of
// the ISSUE 7 acceptance scenario: a coordinator mirrors a durable
// remote peer, the peer restarts from its snapshot+log, and because
// recovery re-establishes the exact (version, rows) fingerprints, the
// restart is invisible — the next warm query moves nothing — and later
// changes flow to the mirror as Delta records, never full re-scans,
// until a checkpoint retires the needed range and the fetch path falls
// back to exactly one scan.
func TestDurablePeerRestartInvisibleThenDeltaSync(t *testing.T) {
	dir := t.TempDir()
	subjectSchema := relation.NewSchema("subject",
		relation.Attr("name"), relation.IntAttr("enrollment"))
	m1, err := OpenDurablePeer("mit", dir, subjectSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []relation.Tuple{
		subjectRow("AI", 80), subjectRow("Robotics", 25), subjectRow("Logic", 10)} {
		if err := m1.Insert("subject", row); err != nil {
			t.Fatal(err)
		}
	}

	n := NewNetwork()
	b := NewPeer("berkeley", relation.NewSchema("course",
		relation.Attr("title"), relation.IntAttr("size")))
	if err := b.Insert("course", relation.Tuple{relation.SV("Ancient History"), relation.IV(40)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("course", relation.Tuple{relation.SV("Compilers"), relation.IV(60)}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(b); err != nil {
		t.Fatal(err)
	}
	st := &swapTransport{inner: NewLoopback(m1)}
	if _, err := n.AddRemotePeer(context.Background(), "mit", st); err != nil {
		t.Fatal(err)
	}
	for _, mp := range []struct{ id, sp, sq, tp, tq string }{
		{"b2m", "berkeley", "m(T, S) :- course(T, S)", "mit", "m(T, S) :- subject(T, S)"},
		{"m2b", "mit", "m(T, S) :- subject(T, S)", "berkeley", "m(T, S) :- course(T, S)"},
	} {
		if err := n.AddMapping(glav.MustNew(mp.id, mp.sp, cq.MustParse(mp.sq), mp.tp, cq.MustParse(mp.tq))); err != nil {
			t.Fatal(err)
		}
	}

	q := cq.MustParse("q(T) :- course(T, S)")
	ask := func(wantAnswers int, wantScans, wantDeltas uint64, when string) {
		t.Helper()
		res, err := n.Answer("berkeley", q, ReformOptions{})
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if res.Answers.Len() != wantAnswers {
			t.Errorf("%s: %d answers, want %d", when, res.Answers.Len(), wantAnswers)
		}
		scans, deltas, _ := n.RemoteSyncCounts()
		if scans != wantScans || deltas != wantDeltas {
			t.Errorf("%s: sync scans %d deltas %d, want scans %d deltas %d",
				when, scans, deltas, wantScans, wantDeltas)
		}
	}

	// Cold: the one referenced remote relation scans exactly once.
	ask(5, 1, 0, "cold query")
	ask(5, 1, 0, "warm query")
	// A live insert moves the fingerprint; the mirror holds a replica at
	// a known version, so the refresh ships one change record.
	if err := m1.Insert("subject", subjectRow("Databases", 60)); err != nil {
		t.Fatal(err)
	}
	ask(6, 1, 1, "after live insert")

	// Restart: checkpoint, close, recover from disk, serve the recovered
	// incarnation through the same transport handle.
	preDigest := store.Digest(m1.Store)
	preVer := m1.Store.Get("subject").Version()
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m1.ClosePersist(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenDurablePeer("mit", dir, subjectSchema)
	if err != nil {
		t.Fatalf("reopen durable peer: %v", err)
	}
	defer m2.ClosePersist()
	if got := store.Digest(m2.Store); got != preDigest {
		t.Fatalf("recovered digest %s, want %s", got, preDigest)
	}
	if got := m2.Store.Get("subject").Version(); got != preVer {
		t.Fatalf("recovered subject version %d, want %d", got, preVer)
	}
	if got := m2.SchemaVersion(); got != m1.SchemaVersion() {
		t.Fatalf("recovered schema version %d, want %d", got, m1.SchemaVersion())
	}
	st.swap(NewLoopback(m2))

	// The restart is invisible: fingerprints match, nothing moves.
	ask(6, 1, 1, "warm query across restart")

	// A post-restart insert reaches the mirror as one Delta record — the
	// rejoin ships records, not relations.
	if err := m2.Insert("subject", subjectRow("Networks", 45)); err != nil {
		t.Fatal(err)
	}
	ask(7, 1, 2, "delta after restart")

	// A checkpoint retires the log range the mirror would need next, so
	// the following refresh falls back to exactly one full scan.
	if err := m2.Insert("subject", subjectRow("Crypto", 30)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ask(8, 2, 2, "scan fallback after checkpoint")
}

// TestServingDeltaContract pins the serving-side guards: an in-memory
// peer never claims delta coverage, and a durable peer refuses for a
// relation it does not store.
func TestServingDeltaContract(t *testing.T) {
	plain := NewPeer("plain", relation.NewSchema("r", relation.Attr("a")))
	if _, ok := plain.ServingDelta("r", 0); ok {
		t.Error("in-memory peer claimed delta coverage")
	}
	durable, err := OpenDurablePeer("d", t.TempDir(), relation.NewSchema("r", relation.Attr("a")))
	if err != nil {
		t.Fatal(err)
	}
	defer durable.ClosePersist()
	if _, ok := durable.ServingDelta("ghost", 0); ok {
		t.Error("durable peer claimed coverage for an unknown relation")
	}
	if err := durable.Insert("r", relation.Tuple{relation.SV("x")}); err != nil {
		t.Fatal(err)
	}
	recs, ok := durable.ServingDelta("r", 0)
	if !ok || len(recs) != 1 {
		t.Errorf("ServingDelta(r, 0) = %d records covered=%v, want 1 covered", len(recs), ok)
	}
}

// TestOpenDurablePeerIdempotentSchemas reopens a durable peer with the
// same schema list: already-recovered schemas must not be re-logged, so
// the schema version is stable across restarts.
func TestOpenDurablePeerIdempotentSchemas(t *testing.T) {
	dir := t.TempDir()
	s := relation.NewSchema("r", relation.Attr("a"))
	p, err := OpenDurablePeer("p", dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SchemaVersion(); got != 1 {
		t.Fatalf("fresh durable peer schema version %d, want 1", got)
	}
	if err := p.ClosePersist(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurablePeer("p", dir, s)
	if err != nil {
		t.Fatal(err)
	}
	defer re.ClosePersist()
	if got := re.SchemaVersion(); got != 1 {
		t.Errorf("reopened schema version %d, want 1 (schema re-logged?)", got)
	}
	// A genuinely new schema still registers and logs.
	re.AddSchema(relation.NewSchema("s", relation.Attr("b")))
	if got := re.SchemaVersion(); got != 2 {
		t.Errorf("schema version after AddSchema %d, want 2", got)
	}
}
