package pdms

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/glav"
	"repro/internal/relation"
	"repro/internal/view"
)

// This file implements push-based replication (ROADMAP item 2): instead
// of every query polling the serving peers with a State probe, a
// coordinator registers a subscription and the serving side pushes each
// committed change record to all subscribers — one-to-many fan-out for
// read scaling. The serving half is the ChangeFeed (a per-subscriber
// bounded queue fed at commit time under the serving write lock, never
// blocking it) plus Peer.FeedSubscribe; the coordinator half is
// Network.StartPush, whose loop applies pushed records to mirror
// replicas through the same verified replay the delta pull path uses,
// keeps the remote fingerprints current so queries skip the State probe
// entirely, and propagates applied changes through the dormant
// updategram path into placed materialized views. A subscriber that
// drains too slowly is evicted (typed ErrSubscriptionGap) back to the
// poll path and may resubscribe once its replicas healed.

// ErrSubscriptionGap reports a push subscription whose change feed
// overflowed: the serving side evicted the subscriber rather than block
// its write lock or buffer unboundedly, and records were dropped from
// the stream. The subscriber falls back to the poll path (its stale
// replicas heal through the ordinary fingerprint-driven fetch) and may
// resubscribe.
var ErrSubscriptionGap = errors.New("pdms: push subscription gap")

// ErrFeedClosed reports a read from a change feed whose subscription
// ended — the subscriber unsubscribed (closed its connection) or the
// serving peer shut down.
var ErrFeedClosed = errors.New("pdms: change feed closed")

// ErrPushUnsupported reports a Subscribe against an endpoint that
// cannot push: the transport does not implement PushTransport, or the
// serving side has push disabled (including pre-push servers, which
// answer the unknown op with a bad-request error). The coordinator
// stays on the poll path — this is terminal, unlike a gap.
var ErrPushUnsupported = errors.New("pdms: push subscription unsupported")

// DefaultFeedQueue is the per-subscriber bounded queue depth: how many
// change records a feed buffers before the subscriber is declared too
// slow and evicted with a gap. Deep enough to ride out transient drain
// stalls, shallow enough that one dead subscriber bounds the serving
// peer's memory.
const DefaultFeedQueue = 1024

// PushTransport is the optional push extension of Transport: a
// transport that can register a subscription for every relation the
// named peer serves. Subscribe blocks for the life of the subscription:
// it calls ack exactly once with the peer's statistics fingerprint at
// subscribe time (so the subscriber knows which of its replicas are
// already stale and must heal through the poll path), then deliver for
// each pushed change batch in order, and returns when the subscription
// ends — ctx cancellation, a typed ErrSubscriptionGap eviction, an
// ErrPushUnsupported refusal, a callback error, or a transport failure.
// since lists, per relation, the mutation version the subscriber last
// applied; the serving side preloads catch-up records for every listed
// relation its durable log still covers, and simply starts from now for
// the rest.
type PushTransport interface {
	Transport
	Subscribe(ctx context.Context, peer string, since map[string]uint64,
		ack func(PeerState) error, deliver func([]relation.ChangeRecord) error) error
}

// ChangeFeed is one subscriber's bounded queue of committed change
// records. The serving peer appends to it at commit time while holding
// its serving write lock — push never blocks: on overflow the feed is
// marked gapped and its buffer dropped, evicting the subscriber to the
// poll path instead of stalling the writer. The reader side (a
// transport's push loop) drains whole batches with Next.
type ChangeFeed struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []relation.ChangeRecord
	max    int
	gap    bool
	closed bool
}

// newChangeFeed returns an empty feed buffering at most max records.
func newChangeFeed(max int) *ChangeFeed {
	f := &ChangeFeed{max: max}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// push appends one record, never blocking: a full buffer marks the feed
// gapped (dropping what was buffered — the stream is broken either
// way). It reports false once the feed is closed, so the commit-time
// fan-out can deregister it lazily.
func (f *ChangeFeed) push(rec relation.ChangeRecord) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return false
	}
	if f.gap {
		return true // already evicted; drop until the reader notices
	}
	if len(f.buf) >= f.max {
		f.gap = true
		f.buf = nil
		f.cond.Broadcast()
		return true
	}
	f.buf = append(f.buf, rec)
	f.cond.Broadcast()
	return true
}

// Next blocks until records are buffered and drains them all as one
// batch. It returns ErrFeedClosed once Close has been called and
// ErrSubscriptionGap once the feed overflowed; both are terminal.
func (f *ChangeFeed) Next() ([]relation.ChangeRecord, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) == 0 && !f.gap && !f.closed {
		f.cond.Wait()
	}
	if f.closed {
		return nil, ErrFeedClosed
	}
	if f.gap {
		return nil, ErrSubscriptionGap
	}
	batch := f.buf
	f.buf = nil
	return batch, nil
}

// Gapped reports whether the feed overflowed and was evicted.
func (f *ChangeFeed) Gapped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gap
}

// Close ends the subscription: Next returns ErrFeedClosed and the
// serving peer deregisters the feed on its next commit. Idempotent and
// safe from any goroutine (connection readers and context watchers call
// it).
func (f *ChangeFeed) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// fanout pushes one committed record to every registered feed, dropping
// feeds whose subscribers are gone. Called under p.serveMu's write side
// — push never blocks, so commit latency stays bounded no matter how
// slow a subscriber drains.
func (p *Peer) fanout(rec relation.ChangeRecord) {
	for f := range p.feeds {
		if !f.push(rec) {
			delete(p.feeds, f)
		}
	}
}

// FeedSubscribe registers a push subscription covering every relation
// this peer serves and returns the new feed plus the peer's statistics
// fingerprint at subscribe time — the ack the transport sends so the
// subscriber can compare it against its own replicas. since lists, per
// relation, the mutation version the subscriber last applied: for every
// listed relation the durable log still covers (and whose preloaded
// records fit the queue), the catch-up records are buffered into the
// feed before live records start; relations that cannot be covered
// start from now, and the returned fingerprint tells the subscriber
// they are stale. max bounds the feed's queue (DefaultFeedQueue when
// <= 0).
func (p *Peer) FeedSubscribe(since map[string]uint64, max int) (*ChangeFeed, uint64, []relation.NamedStats) {
	if max <= 0 {
		max = DefaultFeedQueue
	}
	f := newChangeFeed(max)
	p.serveMu.Lock()
	defer p.serveMu.Unlock()
	if p.persist != nil && len(since) > 0 {
		rels := make([]string, 0, len(since))
		for rel := range since {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			r := p.Store.Get(rel)
			if r == nil || since[rel] >= r.Version() {
				continue
			}
			recs, ok := p.persist.Since(rel, since[rel])
			if !ok || len(f.buf)+len(recs) > max {
				continue // uncoverable or oversized catch-up: poll path heals it
			}
			f.buf = append(f.buf, recs...)
		}
	}
	if p.feeds == nil {
		p.feeds = make(map[*ChangeFeed]struct{})
	}
	p.feeds[f] = struct{}{}
	rels := p.Store.Relations()
	stats := make([]relation.NamedStats, 0, len(rels))
	for _, r := range rels {
		stats = append(stats, relation.NamedStats{Name: r.Schema.Name, Stats: r.Stats()})
	}
	return f, p.SchemaVersion(), stats
}

// FeedCount reports how many push subscriptions are currently
// registered (closed feeds linger until the next commit deregisters
// them lazily).
func (p *Peer) FeedCount() int {
	p.serveMu.RLock()
	defer p.serveMu.RUnlock()
	return len(p.feeds)
}

// Push-loop retry pacing: the resubscribe backoff after a failure
// starts at pushBackoffMin and doubles up to pushBackoffMax.
const (
	pushBackoffMin = 50 * time.Millisecond
	pushBackoffMax = 2 * time.Second
)

// StartPush launches the push subscription manager for one remote peer:
// a goroutine that subscribes through the peer's transport (which must
// implement PushTransport), applies pushed change records to the
// mirror's replicas through the same verified replay the delta pull
// path uses, keeps the remote fingerprints current (so queries skip the
// per-query State probe while the subscription is live — see
// RemotePeer.PushLive), propagates applied changes through the
// updategram path into placed materialized views, and resubscribes with
// backoff after gaps and transport failures. It returns after starting
// the manager; StopPush (or ctx cancellation) ends it. Starting an
// already-started peer is an error.
func (n *Network) StartPush(ctx context.Context, peer string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n.remoteMu.RLock()
	rp := n.remotes[peer]
	n.remoteMu.RUnlock()
	if rp == nil {
		return fmt.Errorf("pdms: %q is not a remote peer", peer)
	}
	pt, can := rp.tr.(PushTransport)
	if !can {
		return fmt.Errorf("%w: transport for %q cannot subscribe", ErrPushUnsupported, peer)
	}
	rp.pushMu.Lock()
	if rp.pushDone != nil {
		rp.pushMu.Unlock()
		return fmt.Errorf("pdms: push already started for %q", peer)
	}
	pctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	rp.pushCancel, rp.pushDone = cancel, done
	rp.pushMu.Unlock()
	go n.pushLoop(pctx, rp, pt, done)
	return nil
}

// StopPush ends the peer's push subscription manager and waits for it
// to exit, so callers can read mirror and view state race-free
// afterwards. A no-op when no manager is running.
func (n *Network) StopPush(peer string) {
	n.remoteMu.RLock()
	rp := n.remotes[peer]
	n.remoteMu.RUnlock()
	if rp != nil {
		rp.stopPush()
	}
}

// stopPush cancels the running push manager, if any, and joins it.
func (rp *RemotePeer) stopPush() {
	rp.pushMu.Lock()
	cancel, done := rp.pushCancel, rp.pushDone
	rp.pushCancel, rp.pushDone = nil, nil
	rp.pushMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// PushLive reports whether a push subscription to this peer is
// currently established — the state in which queries skip the per-query
// State probe, because pushed records keep the fingerprints current.
func (rp *RemotePeer) PushLive() bool { return rp.pushLive.Load() }

// pushLoop is the subscription manager body: subscribe, stream, and on
// failure resubscribe with exponential backoff. A gap increments the
// gap counter and resubscribes from whatever fingerprints the replicas
// are at (the ack plus the poll path heal any distance the gap opened);
// an ErrPushUnsupported refusal is terminal — the peer stays on the
// poll path.
func (n *Network) pushLoop(ctx context.Context, rp *RemotePeer, pt PushTransport, done chan struct{}) {
	defer close(done)
	defer rp.pushLive.Store(false)
	backoff := pushBackoffMin
	for {
		since := n.pushSince(rp)
		err := pt.Subscribe(ctx, rp.name, since,
			func(st PeerState) error {
				backoff = pushBackoffMin // an established subscription resets pacing
				return n.pushAck(ctx, rp, st)
			},
			func(recs []relation.ChangeRecord) error {
				return n.applyPushBatch(rp, recs)
			})
		rp.pushLive.Store(false)
		if ctx.Err() != nil {
			return
		}
		if errors.Is(err, ErrPushUnsupported) {
			return
		}
		if errors.Is(err, ErrSubscriptionGap) {
			n.pushGaps.Add(1)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < pushBackoffMax {
			backoff *= 2
		}
	}
}

// pushSince snapshots the mirror's applied fingerprints — the
// subscription's catch-up request. Only relations with a replica are
// listed: replica-less relations need no catch-up records, they start
// from the subscription point.
func (n *Network) pushSince(rp *RemotePeer) map[string]uint64 {
	n.remoteMu.RLock()
	defer n.remoteMu.RUnlock()
	out := make(map[string]uint64, len(rp.fetched))
	for rel, fp := range rp.fetched {
		out[rel] = fp.ver
	}
	return out
}

// pushAck handles the subscription's acknowledging fingerprint: it
// anchors the remote fingerprints at the subscribe point (from here on
// pushed records keep them current), folds remote schema growth into
// the mirror, resurrects a down peer, and flips the peer to push-live
// so queries skip the State probe.
func (n *Network) pushAck(ctx context.Context, rp *RemotePeer, st PeerState) error {
	var schemas []relation.Schema
	if st.SchemaVersion != rp.schemaVerLoad(n) {
		var err error
		if schemas, err = rp.tr.Schemas(ctx, rp.name); err != nil {
			return err
		}
	}
	n.remoteMu.Lock()
	defer n.remoteMu.Unlock()
	for _, s := range schemas {
		if !rp.mirror.HasRelation(s.Name) {
			rp.mirror.AddSchema(s)
		}
	}
	if schemas != nil {
		rp.schemaVer = st.SchemaVersion
	}
	rp.latest = latestFPs(st)
	rp.latestStats = latestStatsMap(st)
	rp.lastSync = time.Now()
	rp.lastErr = nil
	rp.down.Store(false)
	rp.pushLive.Store(true)
	return nil
}

// schemaVerLoad reads the mirror's synced schema version under the
// network's remote lock (the field itself is remoteMu-guarded).
func (rp *RemotePeer) schemaVerLoad(n *Network) uint64 {
	n.remoteMu.RLock()
	defer n.remoteMu.RUnlock()
	return rp.schemaVer
}

// applyPushBatch applies one pushed change batch under the remote lock:
// schema records grow the mirror, data records advance the remote
// fingerprints, and records for relations with a replica replay onto it
// through the same per-record fingerprint verification the delta pull
// path uses (applyDelta) — a replay that fails simply drops the
// replica's fingerprint, so the next query re-fetches it through the
// poll path. Applied changes then flow through the updategram path into
// placed materialized views, relation by relation with intermediate
// snapshots — incremental maintenance instead of re-derivation, with a
// full refresh as the correctness fallback.
func (n *Network) applyPushBatch(rp *RemotePeer, recs []relation.ChangeRecord) error {
	n.pushBatches.Add(1)
	n.pushRecords.Add(uint64(len(recs)))
	n.remoteMu.Lock()
	defer n.remoteMu.Unlock()
	rp.lastSync = time.Now()
	// Group data records per relation, preserving arrival order.
	var order []string
	byRel := make(map[string][]relation.ChangeRecord)
	for _, rec := range recs {
		if rec.Op == relation.ChangeSchema {
			if !rp.mirror.HasRelation(rec.Schema.Name) {
				rp.mirror.AddSchema(rec.Schema)
			}
			if rec.Ver > rp.schemaVer {
				rp.schemaVer = rec.Ver
			}
			continue
		}
		if byRel[rec.Rel] == nil {
			order = append(order, rec.Rel)
		}
		byRel[rec.Rel] = append(byRel[rec.Rel], rec)
	}
	for _, rel := range order {
		relRecs := byRel[rel]
		last := relRecs[len(relRecs)-1]
		fp := remoteFP{ver: last.Ver, rows: last.Rows}
		rp.latest[rel] = fp
		st := rp.latestStats[rel]
		st.Rows, st.Version = last.Rows, last.Ver
		rp.latestStats[rel] = st
		have, hasReplica := rp.fetched[rel]
		if !hasReplica {
			continue // fingerprint-only relation: nothing local to maintain
		}
		// Skip records the replica already reflects (catch-up overlap
		// after a resubscribe), then replay the rest verified.
		todo := relRecs
		for len(todo) > 0 && todo[0].Ver <= have.ver {
			todo = todo[1:]
		}
		if len(todo) == 0 {
			if have == fp {
				rp.pushFresh[rel] = true
			}
			continue
		}
		base := rp.mirror.Store.Get(rel)
		dst, got, err := applyDelta(base, rel, have, todo)
		if err != nil {
			// Inconsistent with the replica (e.g. the subscription started
			// past a gap the replica predates): drop the fingerprint so the
			// poll path re-fetches, and keep streaming.
			delete(rp.fetched, rel)
			delete(rp.pushFresh, rel)
			continue
		}
		var pre *relation.Database
		if n.hasSubs() {
			pre = n.globalSnapshot() // before the Put: the updategram's pre-state
		}
		rp.mirror.Store.Put(dst)
		rp.fetched[rel] = got
		rp.pushFresh[rel] = true
		if pre != nil {
			u := view.Updategram{Relation: glav.QualifiedName(rp.name, rel)}
			for _, rec := range todo {
				switch rec.Op {
				case relation.ChangeInsert:
					u.Inserts = append(u.Inserts, rec.Tuple)
				case relation.ChangeDelete:
					u.Deletes = append(u.Deletes, rec.Tuple)
				}
			}
			post := n.globalSnapshot()
			if err := n.fanoutViews(pre, post, u, &PublishStats{}); err != nil {
				n.refreshViews(post) // full re-derivation is the fallback truth
			}
		}
	}
	return nil
}

// PushCounts reports the coordinator-side push totals since creation:
// delivered change batches, records in them, and subscription gaps —
// the observability revere query -watch prints and the fan-out tests
// assert on.
func (n *Network) PushCounts() (batches, records, gaps uint64) {
	return n.pushBatches.Load(), n.pushRecords.Load(), n.pushGaps.Load()
}

// WaitPushLive blocks until the peer's push subscription is established
// (acknowledged by the serving side) or ctx ends. Because transports
// register the change feed before delivering the ack, every mutation
// committed after WaitPushLive returns is guaranteed to be pushed —
// the ordering tests and benches need before mutating the served peer.
func (n *Network) WaitPushLive(ctx context.Context, peer string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n.remoteMu.RLock()
	rp := n.remotes[peer]
	n.remoteMu.RUnlock()
	if rp == nil {
		return errUnknownPeer(peer)
	}
	for !rp.pushLive.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
	return nil
}

// WaitPushApplied blocks until the push path has brought peer's rel to
// at least mutation version ver — applied to the replica when one
// exists, observed in the latest fingerprint otherwise — or ctx ends.
// Test and benchmark synchronization for the asynchronous push apply.
func (n *Network) WaitPushApplied(ctx context.Context, peer, rel string, ver uint64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		n.remoteMu.RLock()
		rp := n.remotes[peer]
		var cur uint64
		if rp != nil {
			if fp, ok := rp.fetched[rel]; ok {
				cur = fp.ver
			} else if fp, ok := rp.latest[rel]; ok {
				cur = fp.ver
			}
		}
		n.remoteMu.RUnlock()
		if rp == nil {
			return errUnknownPeer(peer)
		}
		if cur >= ver {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}
