package pdms

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// This file is the plan-shipping tier of the distributed PDMS: instead
// of mirroring a whole remote relation whose fingerprint moved
// (O(relation) bytes per cold refresh), the coordinator can ship a
// bound conjunctive sub-plan to the serving peer and stream back only
// the distinct result tuples (O(answers) bytes) — classic semi-join /
// bound-parameter shipping. The coordinator forwards the distinct
// binding values its exactly-current local relations already hold for
// the shipped atoms' join variables, so the remote side filters before
// sending. Which path a stale relation takes — ship, delta catch-up,
// or full mirror scan — is the per-relation decision Request.Ship
// selects, driven by the statistics model when set to ShipAuto, and
// every path is reported per relation through Cursor.SyncPaths.

// ShipMode selects how a request refreshes stale remote relations.
type ShipMode int

// Ship modes of Request.Ship.
const (
	// ShipNever keeps the mirror behavior: stale remote relations are
	// refreshed by delta catch-up or full scan, never by remote
	// execution. The zero value, so existing requests are unchanged.
	ShipNever ShipMode = iota
	// ShipAuto lets the statistics model decide per relation: a stale
	// relation ships when the estimated result size (rows × per-column
	// selectivities of its atoms' constants and forwarded bindings) is
	// well under the relation's row count, and mirrors otherwise.
	// Relations without per-column distinct estimates mirror.
	ShipAuto
	// ShipAlways ships every eligible stale relation regardless of the
	// statistics model — the deterministic mode the differential tests
	// pin the ship path with. Ineligible relations (an atom with no
	// variables, or a transport without PlanTransport) still mirror.
	ShipAlways
)

// ErrPlanUnsupported reports that a serving peer cannot execute a
// shipped sub-plan — the transport or server predates the Query op, or
// the plan does not compile against the peer's schema. It is a clean
// fallback signal, not a failure: the coordinator mirrors the relation
// instead, on the same pooled connection. Test with errors.Is.
var ErrPlanUnsupported = errors.New("pdms: remote plan execution unsupported")

// ErrPlanBudget reports a shipped sub-plan that produced more distinct
// answers than its row budget — the cost model guessed wrong, and the
// serving side refuses to stream an unbounded result. It wraps
// ErrPlanUnsupported so one errors.Is covers the mirror fallback; test
// for this specific cause with errors.Is(err, ErrPlanBudget).
var ErrPlanBudget = fmt.Errorf("%w: row budget exceeded", ErrPlanUnsupported)

// DefaultShipRowBudget caps a shipped sub-plan's distinct answers when
// Request.ShipRowBudget is zero. Generous — the budget is a backstop
// against a cost-model miss streaming a near-full relation through the
// answer path, not a tuning knob.
const DefaultShipRowBudget = 1 << 20

// shipLimitFactor converts a query's answer Limit into a shipped
// sub-plan row budget: budget = Limit × factor. A sub-plan computes one
// rewriting's contribution before the coordinator's cross-rewriting
// dedup, union, and join steps, so its row count can legitimately
// exceed the final answer count — the factor leaves that headroom.
// Because budgets fail typed rather than truncate (ErrPlanBudget →
// mirror fallback, answers stay exact), a clamp that turns out too
// tight costs only the ship-path savings, never correctness.
const shipLimitFactor = 64

// shipBindingCap bounds a forwarded binding's distinct value set. A
// set larger than this is dropped (not truncated — a truncated binding
// would wrongly exclude rows), so a low-selectivity column never ships
// a megabyte of values to save a kilobyte of tuples.
const shipBindingCap = 2048

// PlanTransport is the optional remote-execution extension of
// Transport: a transport that can ship a conjunctive sub-plan to the
// serving peer and stream back the distinct result tuples. Transports
// that cannot simply don't implement the interface; callers probe with
// a type assertion and fall back to Scan.
type PlanTransport interface {
	Transport
	// ExecPlan executes sp at the serving peer, calling deliver for
	// each batch of distinct result tuples in order. Failures the
	// caller should absorb by mirroring instead — an old server, a plan
	// the peer cannot compile, a row-budget overflow — match
	// ErrPlanUnsupported via errors.Is; everything else is a real
	// transport failure.
	ExecPlan(ctx context.Context, peer string, sp relation.SubPlan, deliver func([]relation.Tuple) error) error
}

// SyncPath records which refresh path one remote relation took during
// request preparation: "ship" (remote sub-plan execution), "push"
// (replica already current from a live push subscription — no bytes
// moved at query time), "delta" (change-record catch-up), or "scan"
// (full mirror re-scan).
type SyncPath struct {
	// Peer is the remote peer serving the relation.
	Peer string
	// Rel is the relation's unqualified name at that peer.
	Rel string
	// Path is "ship", "push", "delta", or "scan".
	Path string
}

// ServingExecPlan compiles and executes a shipped sub-plan against this
// peer's stored relations: the serving half of plan shipping. The
// referenced relations are snapshotted under the serving read lock
// (like ServingScan), then the plan — the sub-plan's atoms plus one
// synthetic single-column relation per forwarded binding — streams its
// distinct answers through deliver in batches of batch tuples
// (DefaultScanBatch when <= 0), honoring ctx cancellation at batch
// boundaries. schema is called exactly once, before the first batch,
// with the answer schema. A plan the peer cannot execute (unknown
// relation, unsafe query, binding over a variable no atom binds)
// returns an ErrPlanUnsupported-class error; a plan whose distinct
// answers exceed sp.RowBudget returns ErrPlanBudget — an error, never
// a truncation. Batches handed to deliver are owned by the callee.
func (p *Peer) ServingExecPlan(ctx context.Context, sp relation.SubPlan, batch int,
	schema func(relation.Schema) error, deliver func([]relation.Tuple) error) error {
	if len(sp.Atoms) == 0 {
		return fmt.Errorf("%w: empty sub-plan", ErrPlanUnsupported)
	}
	db := relation.NewDatabase()
	p.serveMu.RLock()
	for _, a := range sp.Atoms {
		if db.Get(a.Pred) != nil {
			continue
		}
		r := p.Store.Get(a.Pred)
		if r == nil {
			p.serveMu.RUnlock()
			return fmt.Errorf("%w: peer %s has no relation %q", ErrPlanUnsupported, p.Name, a.Pred)
		}
		db.Put(r.SnapshotAs(a.Pred))
	}
	p.serveMu.RUnlock()
	q, err := subPlanQuery(db, sp)
	if err != nil {
		return err
	}
	plan, err := cq.Compile(db, q)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPlanUnsupported, err)
	}
	if err := schema(cq.HeadSchemaFor(db, q)); err != nil {
		return err
	}
	if batch <= 0 {
		batch = DefaultScanBatch
	}
	opts := cq.ExecOptions{}
	if sp.RowBudget > 0 && sp.RowBudget < math.MaxInt-1 {
		// One past the budget: receiving that answer is the overflow.
		opts.Limit = int(sp.RowBudget) + 1
	}
	buf := make([]relation.Tuple, 0, batch)
	var count uint64
	var cbErr error
	err = plan.StreamOpts(ctx, opts, func(t relation.Tuple) bool {
		count++
		if sp.RowBudget > 0 && count > sp.RowBudget {
			cbErr = fmt.Errorf("%w (%d)", ErrPlanBudget, sp.RowBudget)
			return false
		}
		buf = append(buf, t)
		if len(buf) == batch {
			if e := deliver(buf); e != nil {
				cbErr = e
				return false
			}
			buf = make([]relation.Tuple, 0, batch)
		}
		return true
	})
	if cbErr != nil {
		return cbErr
	}
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		return deliver(buf)
	}
	return nil
}

// subPlanQuery converts a wire sub-plan into the conjunctive query the
// serving peer compiles: the atoms verbatim, plus one atom over a
// synthetic single-column relation per forwarded binding (added to db),
// so binding restriction is just another join. Binding values whose
// kind cannot match the variable's column type are dropped — they
// could never join — which also keeps the synthetic relation well
// typed.
func subPlanQuery(db *relation.Database, sp relation.SubPlan) (cq.Query, error) {
	q := cq.Query{HeadPred: "__ship", HeadVars: sp.HeadVars}
	varType := make(map[string]relation.Type)
	for _, a := range sp.Atoms {
		r := db.Get(a.Pred)
		if r.Schema.Arity() != len(a.Args) {
			return cq.Query{}, fmt.Errorf("%w: atom %s has %d args, relation has arity %d",
				ErrPlanUnsupported, a.Pred, len(a.Args), r.Schema.Arity())
		}
		atom := cq.Atom{Pred: a.Pred, Args: make([]cq.Term, len(a.Args))}
		for i, t := range a.Args {
			if t.IsVar {
				atom.Args[i] = cq.V(t.Var)
				if _, seen := varType[t.Var]; !seen {
					varType[t.Var] = r.Schema.Attrs[i].Type
				}
			} else {
				atom.Args[i] = cq.C(t.Const)
			}
		}
		q.Body = append(q.Body, atom)
	}
	for _, b := range sp.Bindings {
		typ, bound := varType[b.Var]
		if !bound {
			return cq.Query{}, fmt.Errorf("%w: binding for variable %q no atom binds", ErrPlanUnsupported, b.Var)
		}
		name := "__bind_" + b.Var
		if db.Get(name) != nil {
			return cq.Query{}, fmt.Errorf("%w: binding relation name %q collides", ErrPlanUnsupported, name)
		}
		br := relation.New(relation.Schema{Name: name,
			Attrs: []relation.Attribute{{Name: b.Var, Type: typ}}})
		for _, v := range b.Values {
			if v.Kind != typ {
				continue
			}
			if err := br.Insert(relation.Tuple{v}); err != nil {
				return cq.Query{}, fmt.Errorf("%w: %v", ErrPlanUnsupported, err)
			}
		}
		db.Put(br)
		q.Body = append(q.Body, cq.Atom{Pred: name, Args: []cq.Term{cq.V(b.Var)}})
	}
	return q, nil
}

// shipSpec describes how one stale remote relation will be refreshed by
// remote execution: one shipped sub-plan per distinct (atom pattern,
// bindings) pair the rewritings reference it through. The union of the
// parts' reconstructed rows is a subset of the remote relation
// sufficient for every one of those atoms.
type shipSpec struct {
	parts []shipPart
}

// shipPart is one shipped sub-plan plus the qualified atom whose
// pattern reconstructs full-width relation rows from returned head
// tuples (head variables fill the variable positions, the pattern's
// constants fill the rest).
type shipPart struct {
	sp   relation.SubPlan
	atom cq.Atom
}

// overlayCatalog resolves relations for plan compilation: shipped
// partial replicas shadow the global snapshot by qualified name. It is
// per-request — shipped results never enter the mirror store, because
// they are only guaranteed sufficient for the request's own rewritings.
type overlayCatalog struct {
	base cq.Catalog
	over map[string]*relation.Relation
}

// Get implements cq.Catalog.
func (o overlayCatalog) Get(name string) *relation.Relation {
	if r := o.over[name]; r != nil {
		return r
	}
	return o.base.Get(name)
}

// planShips decides, per stale relation the fetch path queued, whether
// to refresh it by remote execution, attaching a shipSpec to the jobs
// that ship. Eligibility: the peer's transport implements
// PlanTransport, and every atom referencing the relation carries at
// least one variable (a reconstructed row needs the variable positions
// to cover what the pattern's constants don't). Under ShipAuto the
// statistics model additionally requires the estimated shipped bytes —
// result rows plus forwarded binding values — to be well under the
// relation's row count; relations without per-column distinct
// estimates mirror. Caller holds n.remoteMu.
func (n *Network) planShips(rws []cq.Query, jobs []fetchJob, mode ShipMode,
	rowBudget uint64, degraded map[string]*DegradedPeer) {
	if mode == ShipNever {
		return
	}
	byQName := make(map[string]*fetchJob, len(jobs))
	for i := range jobs {
		job := &jobs[i]
		if _, can := job.rp.tr.(PlanTransport); !can {
			continue
		}
		byQName[glav.QualifiedName(job.rp.name, job.rel)] = job
	}
	if len(byQName) == 0 {
		return
	}
	specs := make(map[string]*shipSpec, len(byQName))
	ineligible := make(map[string]bool)
	partSeen := make(map[string]map[string]bool)
	for _, rw := range rws {
		for ai, a := range rw.Body {
			job := byQName[a.Pred]
			if job == nil || ineligible[a.Pred] {
				continue
			}
			vars := a.Vars()
			if len(vars) == 0 {
				// A constant-only atom reconstructs no rows: the whole
				// relation falls back to mirroring.
				ineligible[a.Pred] = true
				delete(specs, a.Pred)
				continue
			}
			part := n.buildShipPart(rw, ai, rowBudget, degraded)
			key := partKey(part.sp)
			if partSeen[a.Pred] == nil {
				partSeen[a.Pred] = make(map[string]bool)
			}
			if partSeen[a.Pred][key] {
				continue
			}
			partSeen[a.Pred][key] = true
			if specs[a.Pred] == nil {
				specs[a.Pred] = &shipSpec{}
			}
			specs[a.Pred].parts = append(specs[a.Pred].parts, part)
		}
	}
	for qname, spec := range specs {
		job := byQName[qname]
		if mode == ShipAuto {
			st, ok := job.rp.latestStats[job.rel]
			if !ok || st.Distinct == nil || !shipWorthIt(spec.parts, st) {
				continue
			}
		}
		job.ship = spec
	}
}

// buildShipPart assembles the sub-plan for one remote atom of one
// rewriting: the atom with its qualification stripped (the serving
// peer names relations unqualified), plus, per variable, the smallest
// capped distinct-value binding any exactly-current relation of the
// same rewriting provides for it.
func (n *Network) buildShipPart(rw cq.Query, ai int, rowBudget uint64,
	degraded map[string]*DegradedPeer) shipPart {
	a := rw.Body[ai]
	_, rel := glav.SplitQualified(a.Pred)
	sp := relation.SubPlan{HeadVars: a.Vars(), RowBudget: rowBudget}
	wa := relation.SubPlanAtom{Pred: rel, Args: make([]relation.SubPlanTerm, len(a.Args))}
	for i, t := range a.Args {
		if t.IsVar {
			wa.Args[i] = relation.SubPlanTerm{IsVar: true, Var: t.Var}
		} else {
			wa.Args[i] = relation.SubPlanTerm{Const: t.Const}
		}
	}
	sp.Atoms = []relation.SubPlanAtom{wa}
	for _, v := range sp.HeadVars {
		if vals := n.bindingFor(rw, ai, v, degraded); vals != nil {
			sp.Bindings = append(sp.Bindings, relation.SubPlanBinding{Var: v, Values: vals})
		}
	}
	return shipPart{sp: sp, atom: a}
}

// bindingFor extracts the semi-join binding for one variable of a
// shipped atom: the smallest distinct value set any *other* atom of
// the same rewriting provides through an exactly-current relation
// (local peers, or remote replicas whose fingerprint matches the
// latest probe — never stale or degraded replicas, whose columns could
// wrongly exclude rows). nil when no source qualifies or every
// candidate set exceeds shipBindingCap. Values are sorted, so the
// sub-plan's encoding — and the differential digests built on it — is
// deterministic.
func (n *Network) bindingFor(rw cq.Query, ai int, v string,
	degraded map[string]*DegradedPeer) []relation.Value {
	var best []relation.Value
	for bi, b := range rw.Body {
		if bi == ai {
			continue
		}
		col := -1
		for j, t := range b.Args {
			if t.IsVar && t.Var == v {
				col = j
				break
			}
		}
		if col < 0 {
			continue
		}
		r := n.currentSource(b.Pred, degraded)
		if r == nil || col >= r.Schema.Arity() {
			continue
		}
		vals := distinctColumn(r, col, shipBindingCap)
		if vals == nil {
			continue
		}
		if best == nil || len(vals) < len(best) {
			best = vals
		}
	}
	return best
}

// currentSource resolves a qualified predicate to a relation whose
// current content is exact — a local peer's store, or a remote mirror
// replica verified fresh by the latest probe. Stale, unfetched, or
// degraded remote replicas return nil: a binding built from them could
// exclude rows the serving peer actually holds. Caller holds
// n.remoteMu.
func (n *Network) currentSource(pred string, degraded map[string]*DegradedPeer) *relation.Relation {
	peer, rel := glav.SplitQualified(pred)
	if peer == "" {
		return nil
	}
	rp := n.remotes[peer]
	if rp == nil {
		p := n.peers[peer]
		if p == nil {
			return nil
		}
		return p.Store.Get(rel)
	}
	if degraded[peer] != nil {
		return nil
	}
	want, known := rp.latest[rel]
	if !known {
		// The remote serves no data for rel: the mirror's empty replica
		// is trivially current.
		return rp.mirror.Store.Get(rel)
	}
	if got, ok := rp.fetched[rel]; !ok || got != want {
		return nil
	}
	return rp.mirror.Store.Get(rel)
}

// distinctColumn returns the sorted distinct values of one column, or
// nil when their count exceeds cap (a binding that big is dropped, not
// truncated).
func distinctColumn(r *relation.Relation, col, cap_ int) []relation.Value {
	seen := relation.NewTupleSet(64)
	var out []relation.Value
	for _, row := range r.Rows() {
		if seen.Add(relation.Tuple{row[col]}) {
			if len(out) >= cap_ {
				return nil
			}
			out = append(out, row[col])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return relation.Tuple{out[i]}.Less(relation.Tuple{out[j]})
	})
	return out
}

// partKey is the dedup key of a shipped sub-plan: its deterministic
// wire encoding (bindings are sorted by construction), so identical
// (pattern, bindings) pairs referenced by several rewritings ship once.
func partKey(sp relation.SubPlan) string {
	return string(relation.EncodeSubPlan(sp))
}

// shipWorthIt is the ShipAuto statistics model: ship when twice the
// estimated shipped volume — per part, the relation's rows scaled by
// each constant's and each forwarded binding's selectivity (using the
// per-column distinct estimates the State probe carries), plus the
// binding values themselves and a fixed per-part overhead — is still
// below the relation's row count, the cost of mirroring it.
func shipWorthIt(parts []shipPart, st relation.Stats) bool {
	rows := float64(st.Rows)
	if rows <= 0 {
		return false
	}
	total := 0.0
	for _, p := range parts {
		est := rows
		bindSize := make(map[string]int, len(p.sp.Bindings))
		bindTuples := 0
		for _, b := range p.sp.Bindings {
			bindSize[b.Var] = len(b.Values)
			bindTuples += len(b.Values)
		}
		counted := make(map[string]bool)
		for j, t := range p.sp.Atoms[0].Args {
			d := 1.0
			if j < len(st.Distinct) && st.Distinct[j] > 1 {
				d = st.Distinct[j]
			}
			if !t.IsVar {
				est /= d
			} else if k, ok := bindSize[t.Var]; ok && !counted[t.Var] {
				counted[t.Var] = true
				if f := float64(k) / d; f < 1 {
					est *= f
				}
			}
		}
		total += est + float64(bindTuples) + 64
	}
	return 2*total <= rows
}

// runShip executes one relation's shipped sub-plans and reassembles
// the partial replica: per part, the returned head tuples fill the
// atom pattern back into full-width rows, and the union across parts
// is deduplicated (the engine's answers are distinct per part, not
// across parts) into a fresh relation built through Insert so column
// statistics accrue for the planner. Each part retries under the
// request's policy into a per-attempt buffer, so a dropped stream's
// partial tuples never leak into the replica. Errors that match
// ErrPlanUnsupported tell the caller to fall back to mirroring; other
// errors flow into the ordinary degradation handling.
func (n *Network) runShip(ctx context.Context, pol RetryPolicy, budget *retryBudget,
	job fetchJob) (*relation.Relation, int, error) {
	pt := job.rp.tr.(PlanTransport)
	schema := job.rp.mirror.Schema(job.rel)
	// The overlay replica carries the qualified name the per-request
	// catalog resolves atoms by (mirror replicas stay unqualified —
	// globalSnapshot qualifies them on the way out; the overlay bypasses
	// that path).
	schema.Name = glav.QualifiedName(job.rp.name, job.rel)
	dst := relation.New(schema)
	seen := relation.NewTupleSet(64)
	retries := 0
	for _, part := range job.ship.parts {
		headPos := make(map[string]int, len(part.sp.HeadVars))
		for i, v := range part.sp.HeadVars {
			headPos[v] = i
		}
		var rows []relation.Tuple
		r, err := retryOp(ctx, pol, budget, func(actx context.Context) error {
			rows = rows[:0]
			return pt.ExecPlan(actx, job.rp.name, part.sp, func(batch []relation.Tuple) error {
				for _, h := range batch {
					if len(h) != len(part.sp.HeadVars) {
						return fmt.Errorf("shipped answer arity %d, want %d", len(h), len(part.sp.HeadVars))
					}
					row := make(relation.Tuple, len(part.atom.Args))
					for i, t := range part.atom.Args {
						if t.IsVar {
							row[i] = h[headPos[t.Var]]
						} else {
							row[i] = t.Const
						}
					}
					rows = append(rows, row)
				}
				return nil
			})
		})
		retries += r
		if err != nil {
			return nil, retries, err
		}
		for _, row := range rows {
			if seen.Add(row) {
				if err := dst.Insert(row); err != nil {
					return nil, retries, err
				}
			}
		}
	}
	return dst, retries, nil
}
