package pdms

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
)

func TestEstimateCostAndPlacement(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	cm := CostModel{RemoteFactor: 10}
	before, err := n.EstimateCost("oxford", q, cm)
	if err != nil {
		t.Fatal(err)
	}
	workload := []WorkloadQuery{{Peer: "oxford", Query: q, Freq: 5}}
	placements, err := n.PlaceViews(workload, 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 2 {
		t.Fatalf("placements = %v", placements)
	}
	for _, p := range placements {
		if p.AtPeer != "oxford" || p.Benefit <= 0 {
			t.Errorf("placement = %+v", p)
		}
	}
	// Berkeley has 2 rows, MIT 1: berkeley copy should rank first.
	if placements[0].Source != "berkeley.course" {
		t.Errorf("top placement = %+v", placements[0])
	}
	after, err := n.EstimateCost("oxford", q, cm)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("placement did not reduce cost: %v -> %v", before, after)
	}
}

func TestAnswerUsingCopiesMatchesAnswer(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	if _, err := n.MaterializeRemote("oxford", "berkeley", "course"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.MaterializeRemote("oxford", "mit", "subject"); err != nil {
		t.Fatal(err)
	}
	direct, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaCopies, err := n.AnswerUsingCopies("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Answers.Equal(viaCopies.Answers) {
		t.Errorf("copies changed answers: %v vs %v",
			direct.Answers.Rows(), viaCopies.Answers.Rows())
	}
	// Every rewriting that touched a remote copied relation now reads
	// the local copy.
	foundCopy := false
	for _, rw := range viaCopies.Rewritings {
		for _, a := range rw.Body {
			if len(a.Pred) > 6 && a.Pred[:6] == "@copy." {
				foundCopy = true
			}
		}
	}
	if !foundCopy {
		t.Error("no rewriting used a local copy")
	}
}

func TestCopiesStayFreshThroughPublish(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	if _, err := n.MaterializeRemote("oxford", "berkeley", "course"); err != nil {
		t.Fatal(err)
	}
	// Update through the updategram path: copies follow.
	if _, err := n.InsertAndPublish("berkeley", "course",
		relation.Tuple{relation.SV("Rhetoric"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	direct, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaCopies, err := n.AnswerUsingCopies("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Answers.Equal(viaCopies.Answers) {
		t.Errorf("copy went stale after publish: %v vs %v",
			direct.Answers.Rows(), viaCopies.Answers.Rows())
	}
	// Bypassing Publish leaves the copy stale — the documented contract.
	if err := n.Peer("berkeley").Insert("course",
		relation.Tuple{relation.SV("Smuggled"), relation.IV(1)}); err != nil {
		t.Fatal(err)
	}
	direct2, _ := n.Answer("oxford", q, ReformOptions{})
	via2, _ := n.AnswerUsingCopies("oxford", q, ReformOptions{})
	if direct2.Answers.Equal(via2.Answers) {
		t.Error("expected staleness when updates bypass updategrams")
	}
}

func TestMaterializeRemoteValidation(t *testing.T) {
	n := chainNetwork(t)
	if _, err := n.MaterializeRemote("oxford", "ghost", "r"); err == nil {
		t.Error("unknown source peer should fail")
	}
	if _, err := n.MaterializeRemote("oxford", "berkeley", "nope"); err == nil {
		t.Error("unknown relation should fail")
	}
}

func TestLocalCopiesIgnoresNonIdentityViews(t *testing.T) {
	n := chainNetwork(t)
	// A projection view is not a full copy.
	if _, err := n.Subscribe("oxford", "proj",
		cq.MustParse("v(T) :- berkeley.course(T, S)")); err != nil {
		t.Fatal(err)
	}
	if got := n.localCopies("oxford"); len(got) != 0 {
		t.Errorf("projection counted as copy: %v", got)
	}
	if _, err := n.MaterializeRemote("oxford", "berkeley", "course"); err != nil {
		t.Fatal(err)
	}
	if got := n.localCopies("oxford"); len(got) != 1 {
		t.Errorf("copies = %v", got)
	}
	// Hosted elsewhere: not a local copy for oxford.
	if got := n.localCopies("mit"); len(got) != 0 {
		t.Errorf("mit copies = %v", got)
	}
}

func TestPlacementBudget(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	placements, err := n.PlaceViews([]WorkloadQuery{{Peer: "oxford", Query: q, Freq: 1}}, 1, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 1 {
		t.Errorf("budget ignored: %v", placements)
	}
}
