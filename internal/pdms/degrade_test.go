package pdms

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// flakyTransport wraps a Transport, failing operations against peers
// marked dead — a tiny in-package stand-in for internal/faults (which
// this package cannot import without a cycle). kill(peer, true) makes
// every op against that peer fail as unreachable; killScans limits the
// failure to Scan, modeling a peer that answers probes but dies
// mid-fetch.
type flakyTransport struct {
	Transport
	mu        sync.Mutex
	dead      map[string]bool
	scansOnly map[string]bool
}

func newFlaky(inner Transport) *flakyTransport {
	return &flakyTransport{Transport: inner,
		dead: make(map[string]bool), scansOnly: make(map[string]bool)}
}

func (f *flakyTransport) kill(peer string, on bool) {
	f.mu.Lock()
	f.dead[peer] = on
	f.mu.Unlock()
}

func (f *flakyTransport) killScans(peer string, on bool) {
	f.mu.Lock()
	f.scansOnly[peer] = on
	f.mu.Unlock()
}

func (f *flakyTransport) unreachable(peer string, scan bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead[peer] || (scan && f.scansOnly[peer]) {
		return fmt.Errorf("%w: simulated outage of %s", ErrPeerUnreachable, peer)
	}
	return nil
}

func (f *flakyTransport) State(ctx context.Context, peer string) (PeerState, error) {
	if err := f.unreachable(peer, false); err != nil {
		return PeerState{}, err
	}
	return f.Transport.State(ctx, peer)
}

func (f *flakyTransport) Schemas(ctx context.Context, peer string) ([]relation.Schema, error) {
	if err := f.unreachable(peer, false); err != nil {
		return nil, err
	}
	return f.Transport.Schemas(ctx, peer)
}

func (f *flakyTransport) Scan(ctx context.Context, peer, rel string, deliver func([]relation.Tuple) error) error {
	if err := f.unreachable(peer, true); err != nil {
		return err
	}
	return f.Transport.Scan(ctx, peer, rel, deliver)
}

// testRetry is a fast policy for outage tests: two quick attempts so
// degradation triggers in milliseconds, not seconds.
func testRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond, OpTimeout: time.Second, Budget: 8}
}

// flakyChainNetwork is remoteChainNetwork with the remote transport
// wrapped in a flakyTransport so tests can take peers down at will.
func flakyChainNetwork(t *testing.T) (*Network, *flakyTransport, map[string]*Peer) {
	t.Helper()
	n := NewNetwork()
	n.DownProbeInterval = 5 * time.Millisecond
	b := NewPeer("berkeley", relation.NewSchema("course", relation.Attr("title"), relation.IntAttr("size")))
	m := NewPeer("mit", relation.NewSchema("subject", relation.Attr("name"), relation.IntAttr("enrollment")))
	o := NewPeer("oxford", relation.NewSchema("offering", relation.Attr("label"), relation.IntAttr("seats")))
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.Insert("course", relation.Tuple{relation.SV("Ancient History"), relation.IV(40)}))
	must(b.Insert("course", relation.Tuple{relation.SV("Databases"), relation.IV(60)}))
	must(m.Insert("subject", relation.Tuple{relation.SV("AI"), relation.IV(80)}))
	must(o.Insert("offering", relation.Tuple{relation.SV("Greek Philosophy"), relation.IV(15)}))
	fl := newFlaky(NewLoopback(m, o))
	must(n.AddPeer(b))
	if _, err := n.AddRemotePeer(context.Background(), "mit", fl); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRemotePeer(context.Background(), "oxford", fl); err != nil {
		t.Fatal(err)
	}
	addGAV := func(id, srcPeer, srcQ, tgtPeer, tgtQ string) {
		t.Helper()
		mp := glav.MustNew(id, srcPeer, cq.MustParse(srcQ), tgtPeer, cq.MustParse(tgtQ))
		must(n.AddMapping(mp))
	}
	addGAV("b2m", "berkeley", "m(T, S) :- course(T, S)", "mit", "m(T, S) :- subject(T, S)")
	addGAV("m2b", "mit", "m(T, S) :- subject(T, S)", "berkeley", "m(T, S) :- course(T, S)")
	addGAV("m2o", "mit", "m(T, S) :- subject(T, S)", "oxford", "m(T, S) :- offering(T, S)")
	addGAV("o2m", "oxford", "m(T, S) :- offering(T, S)", "mit", "m(T, S) :- subject(T, S)")
	return n, fl, map[string]*Peer{"mit": m, "oxford": o}
}

// answerRows materializes one Query request and returns its cursor for
// degradation inspection alongside the answer relation.
func answerRows(t *testing.T, n *Network, req Request) (*relation.Relation, *Cursor) {
	t.Helper()
	cur, err := n.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := cur.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return rel, cur
}

func TestDegradedServesLastGoodSnapshot(t *testing.T) {
	n, fl, served := flakyChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	req := Request{Peer: "berkeley", Query: q, Retry: testRetry()}

	warm, _ := answerRows(t, n, req) // replicas now hold the last-good rows
	if warm.Len() != 4 {
		t.Fatalf("warm answers = %d, want 4", warm.Len())
	}

	fl.kill("mit", true)
	// While mit's node is dark, its peer still takes writes the
	// coordinator cannot see — the stale answer must predate them.
	if err := served["mit"].Insert("subject", relation.Tuple{relation.SV("Robotics"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}

	// Fresh-only query: typed failure, no stale rows masquerading as fresh.
	if _, err := n.Query(context.Background(), req); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("fresh-only query on a dead peer: err = %v, want ErrPeerUnreachable", err)
	}

	// Stale-tolerant query: succeeds from the last-good mirror and says so.
	stale := req
	stale.AllowStale = true
	rows, cur := answerRows(t, n, stale)
	if !rows.Equal(warm) {
		t.Fatalf("degraded answers %v differ from last-good %v", rows.Rows(), warm.Rows())
	}
	deg := cur.Degraded()
	if len(deg) != 1 || deg[0].Peer != "mit" {
		t.Fatalf("Degraded() = %+v, want exactly mit", deg)
	}
	if !errors.Is(deg[0].Err, ErrPeerUnreachable) {
		t.Fatalf("Degraded error %v should be unreachable-class", deg[0].Err)
	}
	if deg[0].LastSync.IsZero() {
		t.Fatal("Degraded LastSync is zero")
	}
	if cur.Retries() == 0 {
		t.Fatal("degrading to stale spent no retries — the policy never ran")
	}
	if !n.Remote("mit").Down() {
		t.Fatal("degraded peer was not marked down")
	}

	// A second stale query skips probing the down peer entirely: it
	// degrades without spending any of its retry allowance.
	rows2, cur2 := answerRows(t, n, stale)
	if !rows2.Equal(warm) {
		t.Fatal("second degraded query diverged")
	}
	if len(cur2.Degraded()) != 1 || cur2.Retries() != 0 {
		t.Fatalf("down-peer fast path: degraded=%d retries=%d, want 1/0",
			len(cur2.Degraded()), cur2.Retries())
	}
}

func TestDegradedPeerRejoins(t *testing.T) {
	n, fl, served := flakyChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	req := Request{Peer: "berkeley", Query: q, Retry: testRetry()}
	answerRows(t, n, req)

	fl.kill("mit", true)
	if err := served["mit"].Insert("subject", relation.Tuple{relation.SV("Robotics"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	stale := req
	stale.AllowStale = true
	answerRows(t, n, stale)
	if !n.Remote("mit").Down() {
		t.Fatal("peer not marked down")
	}

	// The node comes back: the background prober notices within its
	// cadence and clears the down flag.
	fl.kill("mit", false)
	deadline := time.Now().Add(2 * time.Second)
	for n.Remote("mit").Down() {
		if time.Now().After(deadline) {
			t.Fatal("prober never noticed the peer's return")
		}
		time.Sleep(time.Millisecond)
	}

	// The next query re-syncs in full: fresh answers include the write
	// that happened during the outage, and nothing is degraded.
	rows, cur := answerRows(t, n, stale)
	if len(cur.Degraded()) != 0 {
		t.Fatalf("rejoined peer still degraded: %+v", cur.Degraded())
	}
	if rows.Len() != 5 {
		t.Fatalf("post-rejoin answers = %d, want 5 (outage-time write visible)", rows.Len())
	}
}

func TestDegradedMidFetch(t *testing.T) {
	// The peer answers its freshness probe but dies during the relation
	// scan — degradation must also catch failures between probe and fetch.
	n, fl, served := flakyChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	req := Request{Peer: "berkeley", Query: q, Retry: testRetry()}
	warm, _ := answerRows(t, n, req)

	if err := served["mit"].Insert("subject", relation.Tuple{relation.SV("Robotics"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	fl.killScans("mit", true) // probe sees the new fingerprint, scan fails

	stale := req
	stale.AllowStale = true
	rows, cur := answerRows(t, n, stale)
	if !rows.Equal(warm) {
		t.Fatalf("mid-fetch degradation should serve last-good rows, got %v", rows.Rows())
	}
	deg := cur.Degraded()
	if len(deg) != 1 || deg[0].Peer != "mit" {
		t.Fatalf("Degraded() = %+v, want mit", deg)
	}
	if !n.Remote("mit").Down() {
		t.Fatal("mid-fetch failure did not mark the peer down")
	}

	// Without AllowStale the same failure is a typed error.
	n.Remote("mit").down.Store(false) // clear for the fresh-only attempt
	if _, err := n.Query(context.Background(), req); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("fresh-only mid-fetch failure: err = %v, want ErrPeerUnreachable", err)
	}
}

func TestDegradationNeverMasksDeterministicErrors(t *testing.T) {
	// A version mismatch means the peer is alive but misconfigured;
	// serving stale data would hide that. It must fail even with
	// AllowStale set.
	n, _, _ := flakyChainNetwork(t)
	vt := &versionMismatchTransport{}
	// Swap mit's transport for one that reports a version mismatch.
	n.remotes["mit"].tr = vt
	q := cq.MustParse("q(T) :- course(T, S)")
	req := Request{Peer: "berkeley", Query: q, Retry: testRetry(), AllowStale: true}
	if _, err := n.Query(context.Background(), req); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version mismatch was absorbed: err = %v", err)
	}
	if n.Remote("mit").Down() {
		t.Fatal("a deterministic failure must not mark the peer down")
	}
}

type versionMismatchTransport struct{ Transport }

func (v *versionMismatchTransport) State(context.Context, string) (PeerState, error) {
	return PeerState{}, fmt.Errorf("%w: speaks wire version 99", ErrVersionMismatch)
}

func TestRemovePeerStopsProber(t *testing.T) {
	n, fl, _ := flakyChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	req := Request{Peer: "berkeley", Query: q, Retry: testRetry()}
	answerRows(t, n, req)

	fl.kill("mit", true)
	stale := req
	stale.AllowStale = true
	answerRows(t, n, stale)
	rp := n.Remote("mit")
	if !rp.Down() {
		t.Fatal("peer not marked down")
	}
	rp.proberMu.Lock()
	running := rp.proberStop != nil
	rp.proberMu.Unlock()
	if !running {
		t.Fatal("no prober running for the down peer")
	}
	if err := n.RemovePeer("mit"); err != nil {
		t.Fatal(err)
	}
	rp.proberMu.Lock()
	stopped := rp.proberStop == nil
	rp.proberMu.Unlock()
	if !stopped {
		t.Fatal("RemovePeer left the prober running")
	}
	// The network keeps serving what remains reachable.
	rows, cur := answerRows(t, n, stale)
	if len(cur.Degraded()) != 0 {
		t.Fatalf("removed peer still reported degraded: %+v", cur.Degraded())
	}
	if rows.Len() != 2 { // berkeley's own rows; every mapping chain ran through mit
		t.Fatalf("answers after removal = %d, want 2", rows.Len())
	}
}

func TestBudgetExhaustionSurfacesTyped(t *testing.T) {
	n, fl, _ := flakyChainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	pol := testRetry()
	pol.MaxAttempts = 10
	pol.Budget = 1
	answerRows(t, n, Request{Peer: "berkeley", Query: q, Retry: pol})

	fl.kill("mit", true)
	_, err := n.Query(context.Background(), Request{Peer: "berkeley", Query: q, Retry: pol})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spent budget should surface ErrBudgetExhausted, got %v", err)
	}
	// With AllowStale the same exhaustion degrades instead.
	rows, cur := answerRows(t, n, Request{Peer: "berkeley", Query: q, Retry: pol, AllowStale: true})
	if rows.Len() != 4 || len(cur.Degraded()) != 1 {
		t.Fatalf("budget-exhausted degrade: rows=%d degraded=%d, want 4/1", rows.Len(), len(cur.Degraded()))
	}
}
