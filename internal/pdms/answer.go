package pdms

import (
	"time"

	"repro/internal/cq"
	"repro/internal/relation"
)

// AnswerResult bundles a query's answers with reformulation statistics.
type AnswerResult struct {
	Answers    *relation.Relation
	Rewritings []cq.Query
	Stats      ReformStats
	ReformTime time.Duration
	ExecTime   time.Duration
}

// Answer poses q in the given peer's schema and evaluates it over the
// transitive closure of mappings: "the PDMS will find all data sources
// related through this schema via the transitive closure of mappings, and
// it will use these sources to answer the query in the user's schema".
func (n *Network) Answer(peer string, q cq.Query, opts ReformOptions) (*AnswerResult, error) {
	rf := NewReformulator(n, opts)
	t0 := time.Now()
	rws, stats, err := rf.Reformulate(peer, q)
	if err != nil {
		return nil, err
	}
	reformTime := time.Since(t0)
	t1 := time.Now()
	db := n.GlobalDB()
	var answers *relation.Relation
	if len(rws) > 0 {
		answers, err = cq.EvalUnion(db, rws)
		if err != nil {
			return nil, err
		}
	} else {
		answers = relation.New(relation.Schema{Name: q.HeadPred})
	}
	return &AnswerResult{
		Answers:    answers,
		Rewritings: rws,
		Stats:      *stats,
		ReformTime: reformTime,
		ExecTime:   time.Since(t1),
	}, nil
}

// LocalAnswer evaluates q against the peer's own storage only — the
// baseline a peer had before joining the mapping web.
func (n *Network) LocalAnswer(peer string, q cq.Query) (*relation.Relation, error) {
	p := n.Peer(peer)
	if p == nil {
		return nil, errUnknownPeer(peer)
	}
	return cq.Eval(p.Store, q)
}

func errUnknownPeer(name string) error {
	return &UnknownPeerError{Name: name}
}

// UnknownPeerError reports a reference to a peer the network lacks.
type UnknownPeerError struct{ Name string }

// Error implements error.
func (e *UnknownPeerError) Error() string { return "pdms: unknown peer " + e.Name }
