package pdms

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/cq"
	"repro/internal/relation"
)

// AnswerResult bundles a query's answers with reformulation statistics.
type AnswerResult struct {
	Answers    *relation.Relation
	Rewritings []cq.Query
	Stats      ReformStats
	ReformTime time.Duration
	ExecTime   time.Duration
}

// reformKey identifies one Answer/Query workload: the peer, the query
// text, the option set, and the topology version. Schema additions bump
// the topology version too (Peer.AddSchema notifies joined networks),
// so building a key is O(1) — no per-request walk over the peer set.
type reformKey struct {
	peer        string
	query       string
	opts        ReformOptions
	topoVersion uint64
}

// reformEntry caches a reformulation and, per global-DB snapshot, the
// compiled plans of its rewritings — repeated queries skip both the
// mapping-graph search and query compilation. planMu guards the plan
// fields: concurrent cold hits on one entry compile once, not racing
// to fill the slice.
type reformEntry struct {
	rws   []cq.Query
	stats ReformStats

	planMu  sync.Mutex
	plans   []*cq.Plan
	plansDB *relation.Database
	// plansStatsVer is the database's statistics fingerprint the cached
	// plans were ordered by. Snapshot databases are immutable in normal
	// operation (a data change yields a fresh snapshot, hence a fresh
	// plansDB), but the version guards the cache against any path that
	// mutates relations behind a retained database: a plan whose join
	// order came from stale cardinalities is recompiled, never reused.
	plansStatsVer uint64
}

// plansFor returns the rewritings' compiled plans against db, compiling
// at most once per (database snapshot, statistics version): warm hits
// share the cached slice, and concurrent cold hits serialize on the
// entry's mutex so only the first caller compiles. A statistics change
// under the same database invalidates the plans, since the cost-based
// join orders inside them were chosen from the old cardinalities.
func (e *reformEntry) plansFor(db *relation.Database) ([]*cq.Plan, error) {
	sv := db.StatsVersion()
	e.planMu.Lock()
	defer e.planMu.Unlock()
	if e.plansDB == db && e.plansStatsVer == sv {
		return e.plans, nil
	}
	plans := make([]*cq.Plan, len(e.rws))
	for i, rw := range e.rws {
		p, err := cq.Compile(db, rw)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	e.plans, e.plansDB, e.plansStatsVer = plans, db, sv
	return plans, nil
}

// reformCall is one in-flight reformulation that concurrent cold
// misses on the same cache key coalesce on: the leader runs the
// search, everyone else waits on done.
type reformCall struct {
	done chan struct{}
	e    *reformEntry
	err  error
}

// reformulateOnce returns the cache entry for key, running the
// reformulation search at most once across concurrent callers
// (singleflight). A waiter whose leader was cancelled — the leader's
// own context dying mid-search, which says nothing about the query —
// retries rather than inheriting the cancellation; any other leader
// error is deterministic for the key (unknown peer, bad predicate) and
// is shared with every waiter so a herd on a failing query errors once
// instead of re-running the search per client. A waiter whose own ctx
// dies returns promptly.
func (n *Network) reformulateOnce(ctx context.Context, key reformKey, req Request) (*reformEntry, error) {
	for {
		n.mu.Lock()
		if e := n.reformCache[key]; e != nil {
			n.mu.Unlock()
			return e, nil
		}
		if c := n.reformInflight[key]; c != nil {
			n.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				return c.e, nil
			}
			if !errors.Is(c.err, context.Canceled) && !errors.Is(c.err, context.DeadlineExceeded) {
				return nil, c.err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		call := &reformCall{done: make(chan struct{})}
		n.reformInflight[key] = call
		n.mu.Unlock()

		n.reformCalls.Add(1)
		rws, stats, err := NewReformulator(n, req.Reform).Reformulate(ctx, req.Peer, req.Query)
		var e *reformEntry
		if err == nil {
			e = &reformEntry{rws: rws, stats: *stats}
		}
		n.mu.Lock()
		delete(n.reformInflight, key)
		if err == nil {
			if len(n.reformCache) >= reformCacheMax {
				n.evictReformLocked()
			}
			n.reformCache[key] = e
		}
		n.mu.Unlock()
		call.e, call.err = e, err
		close(call.done)
		return e, err
	}
}

// reformCacheMax bounds the answer cache (topology changes already
// clear it). On overflow, evictReformLocked drops a random half instead
// of wiping the map, so a hot serving peer keeps most of its warm set.
const reformCacheMax = 4096

func (n *Network) reformCacheKey(peer string, q cq.Query, opts ReformOptions) reformKey {
	return reformKey{
		peer:        peer,
		query:       q.String(),
		opts:        opts,
		topoVersion: n.topoVersion.Load(),
	}
}

// evictReformLocked makes room in the full reformulation cache by
// deleting every other entry in (pseudo-random) map iteration order —
// cheap bounded eviction that preserves roughly half of the warm set,
// unlike the wholesale wipe it replaces. Caller holds n.mu.
func (n *Network) evictReformLocked() {
	drop := true
	for k := range n.reformCache {
		if drop {
			delete(n.reformCache, k)
		}
		drop = !drop
	}
}

// Answer poses q in the given peer's schema and evaluates it over the
// transitive closure of mappings: "the PDMS will find all data sources
// related through this schema via the transitive closure of mappings, and
// it will use these sources to answer the query in the user's schema".
//
// It is the materializing wrapper over the streaming Query path:
// reformulations and compiled plans are cached per (peer, query,
// options) until the mapping graph changes, and answers are drained
// push-style through the compiled slot engine with one shared dedup set
// across union branches.
func (n *Network) Answer(peer string, q cq.Query, opts ReformOptions) (*AnswerResult, error) {
	cur, err := n.Query(context.Background(), Request{Peer: peer, Query: q, Reform: opts})
	if err != nil {
		return nil, err
	}
	answers, err := cur.Materialize()
	if err != nil {
		return nil, err
	}
	return &AnswerResult{
		Answers:    answers,
		Rewritings: cur.Rewritings(),
		Stats:      cur.Stats(),
		ReformTime: cur.ReformTime(),
		ExecTime:   cur.ExecTime(),
	}, nil
}

// LocalAnswer evaluates q against the peer's own storage only — the
// baseline a peer had before joining the mapping web.
func (n *Network) LocalAnswer(peer string, q cq.Query) (*relation.Relation, error) {
	cur, err := n.LocalQuery(context.Background(), peer, q)
	if err != nil {
		return nil, err
	}
	return cur.Materialize()
}

func errUnknownPeer(name string) error {
	return &UnknownPeerError{Name: name}
}

// UnknownPeerError reports a reference to a peer the network lacks.
type UnknownPeerError struct{ Name string }

// Error implements error.
func (e *UnknownPeerError) Error() string { return "pdms: unknown peer " + e.Name }
