package pdms

import (
	"time"

	"repro/internal/cq"
	"repro/internal/relation"
)

// AnswerResult bundles a query's answers with reformulation statistics.
type AnswerResult struct {
	Answers    *relation.Relation
	Rewritings []cq.Query
	Stats      ReformStats
	ReformTime time.Duration
	ExecTime   time.Duration
}

// reformKey identifies one Answer workload: the peer, the query text,
// the option set, the mapping-graph version, and the total schema size
// (AddSchema bypasses the network, so it is folded into the key).
type reformKey struct {
	peer        string
	query       string
	opts        ReformOptions
	topoVersion uint64
	schemaSize  int
}

// reformEntry caches a reformulation and, per global-DB snapshot, the
// compiled plans of its rewritings — repeated queries skip both the
// mapping-graph search and query compilation.
type reformEntry struct {
	rws     []cq.Query
	stats   ReformStats
	plans   []*cq.Plan
	plansDB *relation.Database
}

// reformCacheMax bounds the answer cache; it is cleared when full
// (topology changes already clear it).
const reformCacheMax = 4096

func (n *Network) reformCacheKey(peer string, q cq.Query, opts ReformOptions) reformKey {
	n.mu.Lock()
	defer n.mu.Unlock()
	size := 0
	for _, p := range n.peers {
		size += len(p.schema)
	}
	return reformKey{
		peer:        peer,
		query:       q.String(),
		opts:        opts,
		topoVersion: n.topoVersion,
		schemaSize:  size,
	}
}

// Answer poses q in the given peer's schema and evaluates it over the
// transitive closure of mappings: "the PDMS will find all data sources
// related through this schema via the transitive closure of mappings, and
// it will use these sources to answer the query in the user's schema".
//
// Reformulations and their compiled plans are cached per (peer, query,
// options) until the mapping graph changes, and answers are evaluated
// with the compiled slot engine, deduplicating through one shared hash
// set as union branches execute.
func (n *Network) Answer(peer string, q cq.Query, opts ReformOptions) (*AnswerResult, error) {
	key := n.reformCacheKey(peer, q, opts)
	t0 := time.Now()
	n.mu.Lock()
	e := n.reformCache[key]
	n.mu.Unlock()
	if e == nil {
		rf := NewReformulator(n, opts)
		rws, stats, err := rf.Reformulate(peer, q)
		if err != nil {
			return nil, err
		}
		e = &reformEntry{rws: rws, stats: *stats}
		n.mu.Lock()
		if len(n.reformCache) >= reformCacheMax {
			n.reformCache = make(map[reformKey]*reformEntry)
		}
		n.reformCache[key] = e
		n.mu.Unlock()
	}
	reformTime := time.Since(t0)
	t1 := time.Now()
	db := n.GlobalDB()
	var answers *relation.Relation
	if len(e.rws) > 0 {
		n.mu.Lock()
		plans, plansDB := e.plans, e.plansDB
		n.mu.Unlock()
		if plansDB != db {
			plans = make([]*cq.Plan, len(e.rws))
			for i, rw := range e.rws {
				p, err := cq.Compile(db, rw)
				if err != nil {
					return nil, err
				}
				plans[i] = p
			}
			n.mu.Lock()
			e.plans, e.plansDB = plans, db
			n.mu.Unlock()
		}
		var err error
		answers, err = cq.ExecUnion(plans)
		if err != nil {
			return nil, err
		}
	} else {
		answers = relation.New(relation.Schema{Name: q.HeadPred})
	}
	rws := make([]cq.Query, len(e.rws))
	copy(rws, e.rws)
	return &AnswerResult{
		Answers:    answers,
		Rewritings: rws,
		Stats:      e.stats,
		ReformTime: reformTime,
		ExecTime:   time.Since(t1),
	}, nil
}

// LocalAnswer evaluates q against the peer's own storage only — the
// baseline a peer had before joining the mapping web.
func (n *Network) LocalAnswer(peer string, q cq.Query) (*relation.Relation, error) {
	p := n.Peer(peer)
	if p == nil {
		return nil, errUnknownPeer(peer)
	}
	return cq.Eval(p.Store, q)
}

func errUnknownPeer(name string) error {
	return &UnknownPeerError{Name: name}
}

// UnknownPeerError reports a reference to a peer the network lacks.
type UnknownPeerError struct{ Name string }

// Error implements error.
func (e *UnknownPeerError) Error() string { return "pdms: unknown peer " + e.Name }
