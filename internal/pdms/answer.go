package pdms

import (
	"context"
	"time"

	"repro/internal/cq"
	"repro/internal/relation"
)

// AnswerResult bundles a query's answers with reformulation statistics.
type AnswerResult struct {
	Answers    *relation.Relation
	Rewritings []cq.Query
	Stats      ReformStats
	ReformTime time.Duration
	ExecTime   time.Duration
}

// reformKey identifies one Answer/Query workload: the peer, the query
// text, the option set, and the topology version. Schema additions bump
// the topology version too (Peer.AddSchema notifies joined networks),
// so building a key is O(1) — no per-request walk over the peer set.
type reformKey struct {
	peer        string
	query       string
	opts        ReformOptions
	topoVersion uint64
}

// reformEntry caches a reformulation and, per global-DB snapshot, the
// compiled plans of its rewritings — repeated queries skip both the
// mapping-graph search and query compilation.
type reformEntry struct {
	rws     []cq.Query
	stats   ReformStats
	plans   []*cq.Plan
	plansDB *relation.Database
}

// reformCacheMax bounds the answer cache (topology changes already
// clear it). On overflow, evictReformLocked drops a random half instead
// of wiping the map, so a hot serving peer keeps most of its warm set.
const reformCacheMax = 4096

func (n *Network) reformCacheKey(peer string, q cq.Query, opts ReformOptions) reformKey {
	return reformKey{
		peer:        peer,
		query:       q.String(),
		opts:        opts,
		topoVersion: n.topoVersion.Load(),
	}
}

// evictReformLocked makes room in the full reformulation cache by
// deleting every other entry in (pseudo-random) map iteration order —
// cheap bounded eviction that preserves roughly half of the warm set,
// unlike the wholesale wipe it replaces. Caller holds n.mu.
func (n *Network) evictReformLocked() {
	drop := true
	for k := range n.reformCache {
		if drop {
			delete(n.reformCache, k)
		}
		drop = !drop
	}
}

// Answer poses q in the given peer's schema and evaluates it over the
// transitive closure of mappings: "the PDMS will find all data sources
// related through this schema via the transitive closure of mappings, and
// it will use these sources to answer the query in the user's schema".
//
// It is the materializing wrapper over the streaming Query path:
// reformulations and compiled plans are cached per (peer, query,
// options) until the mapping graph changes, and answers are drained
// push-style through the compiled slot engine with one shared dedup set
// across union branches.
func (n *Network) Answer(peer string, q cq.Query, opts ReformOptions) (*AnswerResult, error) {
	cur, err := n.Query(context.Background(), Request{Peer: peer, Query: q, Reform: opts})
	if err != nil {
		return nil, err
	}
	answers, err := cur.Materialize()
	if err != nil {
		return nil, err
	}
	return &AnswerResult{
		Answers:    answers,
		Rewritings: cur.Rewritings(),
		Stats:      cur.Stats(),
		ReformTime: cur.ReformTime(),
		ExecTime:   cur.ExecTime(),
	}, nil
}

// LocalAnswer evaluates q against the peer's own storage only — the
// baseline a peer had before joining the mapping web.
func (n *Network) LocalAnswer(peer string, q cq.Query) (*relation.Relation, error) {
	cur, err := n.LocalQuery(context.Background(), peer, q)
	if err != nil {
		return nil, err
	}
	return cur.Materialize()
}

func errUnknownPeer(name string) error {
	return &UnknownPeerError{Name: name}
}

// UnknownPeerError reports a reference to a peer the network lacks.
type UnknownPeerError struct{ Name string }

// Error implements error.
func (e *UnknownPeerError) Error() string { return "pdms: unknown peer " + e.Name }
