package pdms

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// TestAnswerCacheSeesNewData ensures the answer cache does not serve
// stale answers after stored data changes: the rewritings are reused,
// but evaluation runs against a fresh global snapshot.
func TestAnswerCacheSeesNewData(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	res1, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Answers.Len() != 4 {
		t.Fatalf("initial answers = %d, want 4", res1.Answers.Len())
	}
	// New Berkeley course must show up at Oxford on the next Answer.
	if err := n.Peer("berkeley").Insert("course",
		relation.Tuple{relation.SV("Logic"), relation.IV(25)}); err != nil {
		t.Fatal(err)
	}
	res2, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answers.Len() != 5 {
		t.Errorf("answers after insert = %d, want 5", res2.Answers.Len())
	}
	// And the earlier result must be untouched (snapshot semantics).
	if res1.Answers.Len() != 4 {
		t.Errorf("first result mutated: len = %d", res1.Answers.Len())
	}
}

// TestAnswerCacheInvalidatedByTopology ensures adding a mapping after a
// cached Answer recomputes the reformulation.
func TestAnswerCacheInvalidatedByTopology(t *testing.T) {
	n := NewNetwork()
	a := NewPeer("a", relation.NewSchema("r", relation.Attr("x")))
	b := NewPeer("b", relation.NewSchema("s", relation.Attr("x")))
	for _, p := range []*Peer{a, b} {
		if err := n.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Insert("r", relation.Tuple{relation.SV("local")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("s", relation.Tuple{relation.SV("remote")}); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("q(X) :- r(X)")
	res, err := n.Answer("a", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 1 {
		t.Fatalf("pre-mapping answers = %d, want 1", res.Answers.Len())
	}
	m := glav.MustNew("b2a", "b", cq.MustParse("m(X) :- s(X)"), "a", cq.MustParse("m(X) :- r(X)"))
	if err := n.AddMapping(m); err != nil {
		t.Fatal(err)
	}
	res, err = n.Answer("a", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() != 2 {
		t.Errorf("post-mapping answers = %d, want 2 (cache must be invalidated)", res.Answers.Len())
	}
}

// TestAnswerConcurrent hammers Answer from several goroutines (run
// under -race) to exercise the cache locking: same query (shared
// reformEntry and plan cache), distinct queries, and a constant-probe
// query over a >16-row relation so concurrent executions race to
// lazily index the shared global snapshot.
func TestAnswerConcurrent(t *testing.T) {
	n := chainNetwork(t)
	ox := n.Peer("oxford")
	for i := 0; i < 30; i++ {
		if err := ox.Insert("offering", relation.Tuple{
			relation.SV(fmt.Sprintf("Extra %d", i)), relation.IV(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		q    cq.Query
		want int
	}{
		{cq.MustParse("q(L) :- offering(L, S)"), 34},
		{cq.MustParse("q(L, S) :- offering(L, S)"), 34},
		{cq.MustParse("q(S) :- offering('Greek Philosophy', S)"), 1},
	}
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cases[g%len(cases)]
			for i := 0; i < 20; i++ {
				res, err := n.Answer("oxford", c.q, ReformOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Answers.Len() != c.want {
					t.Errorf("%s: answers = %d, want %d", c.q, res.Answers.Len(), c.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGlobalDBSnapshotsIndependent ensures Publish's pre/post snapshots
// stay distinct: a delete applied between them must not leak into pre.
func TestGlobalDBSnapshotsIndependent(t *testing.T) {
	n := chainNetwork(t)
	pre := n.GlobalDB()
	preLen := pre.Get("berkeley.course").Len()
	if removed := n.Peer("berkeley").Store.Get("course").Delete(
		relation.Tuple{relation.SV("Databases"), relation.IV(60)}); removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	post := n.GlobalDB()
	if pre == post {
		t.Fatal("GlobalDB returned the same snapshot across a mutation")
	}
	if got := pre.Get("berkeley.course").Len(); got != preLen {
		t.Errorf("pre snapshot changed: len = %d, want %d", got, preLen)
	}
	if got := post.Get("berkeley.course").Len(); got != preLen-1 {
		t.Errorf("post snapshot len = %d, want %d", got, preLen-1)
	}
	// Unchanged network: the snapshot (and its warm indexes) is reused.
	if again := n.GlobalDB(); again != post {
		t.Error("GlobalDB rebuilt despite no mutations")
	}
}
