package pdms

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/relation"
)

// drainCursor pulls every tuple, failing on cursor error.
func drainCursor(t *testing.T, cur *Cursor) []relation.Tuple {
	t.Helper()
	var rows []relation.Tuple
	for cur.Next() {
		rows = append(rows, cur.Tuple())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

func keySet(rows []relation.Tuple) map[string]bool {
	s := make(map[string]bool, len(rows))
	for _, r := range rows {
		s[r.Key()] = true
	}
	return s
}

// TestQueryCursorMatchesAnswer holds the pull cursor to the same answer
// set, schema, and reformulation stats as the materializing Answer.
func TestQueryCursorMatchesAnswer(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	res, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := n.Query(context.Background(), Request{Peer: "oxford", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Schema().String() != res.Answers.Schema.String() {
		t.Errorf("cursor schema %v != answer schema %v", cur.Schema(), res.Answers.Schema)
	}
	rows := drainCursor(t, cur)
	// Compared after the drain: the kernel counters fill in as the
	// branches execute.
	if cur.Stats() != res.Stats {
		t.Errorf("cursor stats %+v != answer stats %+v", cur.Stats(), res.Stats)
	}
	if len(rows) != res.Answers.Len() {
		t.Fatalf("cursor yielded %d tuples, Answer %d", len(rows), res.Answers.Len())
	}
	want := keySet(res.Answers.Rows())
	for _, r := range rows {
		if !want[r.Key()] {
			t.Errorf("cursor tuple %v not in Answer result", r)
		}
	}
	if cur.ExecTime() <= 0 {
		t.Error("ExecTime not recorded after drain")
	}
	if got := len(keySet(rows)); got != len(rows) {
		t.Errorf("cursor yielded duplicates: %d tuples, %d distinct", len(rows), got)
	}
}

// TestQueryLimit returns exactly N distinct tuples that are a subset of
// the full answer, and stops the union early.
func TestQueryLimit(t *testing.T) {
	n := chainNetwork(t)
	ox := n.Peer("oxford")
	for i := 0; i < 30; i++ {
		if err := ox.Insert("offering", relation.Tuple{
			relation.SV(fmt.Sprintf("Extra %d", i)), relation.IV(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	q := cq.MustParse("q(L) :- offering(L, S)")
	full, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fullSet := keySet(full.Answers.Rows())
	for _, limit := range []int{1, 5, full.Answers.Len(), full.Answers.Len() + 10} {
		cur, err := n.Query(context.Background(), Request{Peer: "oxford", Query: q, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		rows := drainCursor(t, cur)
		want := limit
		if limit > len(fullSet) {
			want = len(fullSet)
		}
		if len(rows) != want {
			t.Fatalf("limit %d yielded %d tuples, want %d", limit, len(rows), want)
		}
		if got := len(keySet(rows)); got != len(rows) {
			t.Fatalf("limit %d yielded duplicates", limit)
		}
		for _, r := range rows {
			if !fullSet[r.Key()] {
				t.Fatalf("limit %d tuple %v not in full answer", limit, r)
			}
		}
	}
}

// TestQueryMaterializeEqualsDrain checks both consumption styles of one
// cursor API: push-style Materialize on a fresh cursor and Next-drain
// produce the same relation, and a cursor drained without error
// materializes to an empty relation carrying the cursor schema.
func TestQueryMaterializeEqualsDrain(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L) :- offering(L, S)")
	c1, err := n.Query(context.Background(), Request{Peer: "oxford", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := c1.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.Query(context.Background(), Request{Peer: "oxford", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, c2)
	c2.Close()
	if mat.Len() != len(rows) {
		t.Errorf("Materialize %d tuples, drain %d", mat.Len(), len(rows))
	}
	// Regression: Materialize on a cursor already drained (or closed)
	// without error returns an empty relation of the cursor schema, not
	// an error — Err() == nil is not a failure state.
	empty, err := c1.Materialize()
	if err != nil {
		t.Fatalf("Materialize after Materialize: %v", err)
	}
	if empty.Len() != 0 {
		t.Errorf("re-Materialize returned %d tuples, want 0", empty.Len())
	}
	if empty.Schema.String() != c1.Schema().String() {
		t.Errorf("re-Materialize schema %v, want cursor schema %v", empty.Schema, c1.Schema())
	}
	empty2, err := c2.Materialize()
	if err != nil {
		t.Fatalf("Materialize after drain+Close: %v", err)
	}
	if empty2.Len() != 0 {
		t.Errorf("Materialize after drain+Close returned %d tuples, want 0", empty2.Len())
	}
	// Close is idempotent and keeps returning the final error state.
	if err := c2.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// A cursor Closed mid-stream was not drained: Materialize must
	// refuse rather than pass partial consumption off as no answers.
	c3, err := n.Query(context.Background(), Request{Peer: "oxford", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Next() {
		t.Fatal("expected at least one answer")
	}
	c3.Close()
	if _, err := c3.Materialize(); !errors.Is(err, errCursorClosed) {
		t.Errorf("Materialize after early Close: err = %v, want errCursorClosed", err)
	}
}

// TestQueryPreCancelled rejects a dead context before any work.
func TestQueryPreCancelled(t *testing.T) {
	n := chainNetwork(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Query(ctx, Request{Peer: "oxford",
		Query: cq.MustParse("q(L) :- offering(L, S)")}); !errors.Is(err, context.Canceled) {
		t.Errorf("Query on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestCursorCancelledMidStream cancels between pulls on a large local
// cross product; the next pull must stop with ctx.Err() well before the
// 40000-tuple space is exhausted.
func TestCursorCancelledMidStream(t *testing.T) {
	n := NewNetwork()
	p := NewPeer("solo",
		relation.NewSchema("a", relation.Attr("x")),
		relation.NewSchema("b", relation.Attr("y")))
	if err := n.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := p.Insert("a", relation.Tuple{relation.SV(fmt.Sprintf("a%d", i))}); err != nil {
			t.Fatal(err)
		}
		if err := p.Insert("b", relation.Tuple{relation.SV(fmt.Sprintf("b%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur, err := n.LocalQuery(ctx, "solo", cq.MustParse("q(X, Y) :- a(X), b(Y)"))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	pulled := 0
	for cur.Next() {
		pulled++
		if pulled == 1 {
			cancel()
		}
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cursor err = %v, want context.Canceled", err)
	}
	if pulled > 300 {
		t.Errorf("pulled %d tuples after cancel, want prompt stop", pulled)
	}
	if cur.Next() {
		t.Error("Next succeeded on a failed cursor")
	}
}

// TestLocalQuerySnapshotBinding: a cursor is bound to the store state
// at Query time — tuples inserted after Query but before the drain must
// not appear.
func TestLocalQuerySnapshotBinding(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	cur, err := n.LocalQuery(context.Background(), "berkeley", q)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Peer("berkeley").Insert("course",
		relation.Tuple{relation.SV("Late Arrival"), relation.IV(9)}); err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, cur)
	cur.Close()
	if len(rows) != 2 {
		t.Errorf("cursor saw %d tuples, want the 2 present at Query time", len(rows))
	}
	for _, r := range rows {
		if r[0] == relation.SV("Late Arrival") {
			t.Error("cursor observed a post-Query insert")
		}
	}
}

// meshNetwork builds k fully connected peers, each with a single
// relation r(x), mapped pairwise in both directions — with visited
// pruning off, reformulation explores O((k-1)^depth) states, enough to
// cross many cancellation poll intervals.
func meshNetwork(t *testing.T, k int) *Network {
	t.Helper()
	n := NewNetwork()
	for i := 0; i < k; i++ {
		p := NewPeer(fmt.Sprintf("p%d", i), relation.NewSchema("r", relation.Attr("x")))
		if err := n.AddPeer(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			m := glav.MustNew(fmt.Sprintf("m%d_%d", i, j),
				fmt.Sprintf("p%d", i), cq.MustParse("m(X) :- r(X)"),
				fmt.Sprintf("p%d", j), cq.MustParse("m(X) :- r(X)"))
			if err := n.AddMapping(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n
}

// midCancelCtx reports healthy on the first Err call (the entry check)
// and cancelled on every later one, with an always-closed Done channel —
// a deterministic stand-in for a context cancelled during the search.
type midCancelCtx struct {
	context.Context
	calls atomic.Int32
}

func (c *midCancelCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (c *midCancelCtx) Err() error {
	if c.calls.Add(1) == 1 {
		return nil
	}
	return context.Canceled
}

// TestReformulateCancelledMidSearch cancels the mapping-graph expansion
// between states: the exponential search must return ctx.Err() at the
// first poll instead of running to completion.
func TestReformulateCancelledMidSearch(t *testing.T) {
	n := meshNetwork(t, 4)
	q := cq.MustParse("q(X) :- r(X)")
	opts := ReformOptions{MaxDepth: 6, NoVisitedPruning: true,
		NoContainmentPruning: true, NoLAV: true, MaxRewritings: 1 << 20}

	// Sanity: uncancelled, the search visits far more states than one
	// poll interval, so the mid-search poll below is guaranteed to fire.
	_, stats, err := NewReformulator(n, opts).Reformulate(context.Background(), "p0", q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Explored < 10*reformCheckInterval {
		t.Fatalf("test workload too small: %d states explored", stats.Explored)
	}

	_, _, err = NewReformulator(n, opts).Reformulate(
		&midCancelCtx{Context: context.Background()}, "p0", q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAnswerSchemaConsistentWhenEmpty locks the satellite fix: an
// answer relation carries the same typed head schema whether or not any
// tuples exist.
func TestAnswerSchemaConsistentWhenEmpty(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(L, S) :- offering(L, S)")
	full, err := n.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Answers.Len() == 0 {
		t.Fatal("expected answers in the populated network")
	}
	// Same query against an identical but empty network.
	n2 := NewNetwork()
	o := NewPeer("oxford", relation.NewSchema("offering",
		relation.Attr("label"), relation.IntAttr("seats")))
	if err := n2.AddPeer(o); err != nil {
		t.Fatal(err)
	}
	empty, err := n2.Answer("oxford", q, ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Answers.Len() != 0 {
		t.Fatalf("expected no answers, got %d", empty.Answers.Len())
	}
	if empty.Answers.Schema.String() != full.Answers.Schema.String() {
		t.Errorf("empty schema %v != populated schema %v",
			empty.Answers.Schema, full.Answers.Schema)
	}
	if empty.Answers.Schema.Attrs[1].Type != relation.TInt {
		t.Errorf("empty answer lost head typing: %v", empty.Answers.Schema.Attrs)
	}
}

// TestAddSchemaInvalidatesReformCache: growing a joined peer's schema is
// a topology change — the O(1) cache key must differ and the cached
// reformulations must be dropped.
func TestAddSchemaInvalidatesReformCache(t *testing.T) {
	n := chainNetwork(t)
	q := cq.MustParse("q(T) :- course(T, S)")
	if _, err := n.Answer("berkeley", q, ReformOptions{}); err != nil {
		t.Fatal(err)
	}
	k1 := n.reformCacheKey("berkeley", q, ReformOptions{})
	n.mu.Lock()
	cached := len(n.reformCache)
	n.mu.Unlock()
	if cached == 0 {
		t.Fatal("Answer did not populate the reformulation cache")
	}
	n.Peer("berkeley").AddSchema(relation.NewSchema("extra", relation.Attr("z")))
	k2 := n.reformCacheKey("berkeley", q, ReformOptions{})
	if k1 == k2 {
		t.Error("cache key unchanged across AddSchema")
	}
	n.mu.Lock()
	cached = len(n.reformCache)
	n.mu.Unlock()
	if cached != 0 {
		t.Errorf("reformulation cache not cleared by AddSchema: %d entries", cached)
	}
}

// TestEvictReformHalvesCache: overflow eviction drops half the entries
// instead of wiping the cache, and answering keeps working afterwards.
func TestEvictReformHalvesCache(t *testing.T) {
	n := chainNetwork(t)
	n.mu.Lock()
	for i := 0; i < 100; i++ {
		n.reformCache[reformKey{query: fmt.Sprintf("q%d", i)}] = &reformEntry{}
	}
	n.evictReformLocked()
	size := len(n.reformCache)
	n.mu.Unlock()
	if size != 50 {
		t.Errorf("cache size after eviction = %d, want 50", size)
	}
	res, err := n.Answer("oxford", cq.MustParse("q(L) :- offering(L, S)"), ReformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers.Len() == 0 {
		t.Error("no answers after eviction")
	}
}
