package pdms

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/relation"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1} // no jitter: exact values
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterStaysInRange(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := p.Backoff(1, rnd)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("read tcp: connection reset"), true},
		{fmt.Errorf("dial: %w", ErrPeerUnreachable), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("hello: %w", ErrVersionMismatch), false},
		{fmt.Errorf("spent: %w", ErrBudgetExhausted), false},
		{&relation.WireError{Code: relation.ErrCodeUnknownPeer}, false},
		{&relation.WireError{Code: relation.ErrCodeUnknownRelation}, false},
		{&relation.WireError{Code: relation.ErrCodeBadRequest}, false},
		{&relation.WireError{Code: relation.ErrCodeVersion}, false},
		{&relation.WireError{Code: relation.ErrCodeInternal}, true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryOpRecoversFromTransientFailures(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	calls := 0
	retries, err := retryOp(context.Background(), p, newRetryBudget(p), func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flaky: %w", ErrPeerUnreachable)
		}
		return nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("retryOp: err=%v calls=%d retries=%d, want nil/3/2", err, calls, retries)
	}
}

func TestRetryOpStopsOnDeterministicError(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	werr := &relation.WireError{Code: relation.ErrCodeUnknownRelation, Message: "no such"}
	retries, err := retryOp(context.Background(), p, newRetryBudget(p), func(context.Context) error {
		calls++
		return werr
	})
	if !errors.Is(err, werr) || calls != 1 || retries != 0 {
		t.Fatalf("deterministic error was retried: err=%v calls=%d retries=%d", err, calls, retries)
	}
}

func TestRetryOpBudgetExhaustion(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: 2}
	budget := newRetryBudget(p)
	calls := 0
	_, err := retryOp(context.Background(), p, budget, func(context.Context) error {
		calls++
		return fmt.Errorf("still down: %w", ErrPeerUnreachable)
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spent budget should surface ErrBudgetExhausted, got %v", err)
	}
	if calls != 3 { // first attempt + 2 budgeted retries
		t.Fatalf("calls = %d, want 3 (1 + budget of 2)", calls)
	}
	// A sibling operation drawing from the same spent pot gets no retries.
	calls = 0
	_, err = retryOp(context.Background(), p, budget, func(context.Context) error {
		calls++
		return fmt.Errorf("also down: %w", ErrPeerUnreachable)
	})
	if !errors.Is(err, ErrBudgetExhausted) || calls != 1 {
		t.Fatalf("shared budget not enforced: err=%v calls=%d", err, calls)
	}
}

func TestRetryOpHungAttemptIsRetryable(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, OpTimeout: 20 * time.Millisecond}
	calls := 0
	retries, err := retryOp(context.Background(), p, newRetryBudget(p), func(ctx context.Context) error {
		calls++
		<-ctx.Done() // a black-holed peer: the attempt only ends at OpTimeout
		return ctx.Err()
	})
	if calls != 2 || retries != 1 {
		t.Fatalf("hung attempt not retried: calls=%d retries=%d", calls, retries)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted hang should report the timeout, got %v", err)
	}
}

func TestRetryOpParentCancellationIsTerminal(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := retryOp(ctx, p, newRetryBudget(p), func(context.Context) error {
		calls++
		cancel() // the caller goes away mid-attempt
		return fmt.Errorf("interrupted: %w", ErrPeerUnreachable)
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("parent cancellation should stop retries: err=%v calls=%d", err, calls)
	}
}
