package pdms

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// This file is the failure vocabulary and retry machinery of the
// distributed tier. Remote operations fail for two very different
// reasons — the network hiccuped (retryable) or the request is
// deterministically wrong (not) — and everything above the transport
// wants to branch on which: the retry runner re-attempts only the
// first kind, the degradation path (remote.go) converts exhausted
// retries into served-stale answers, and callers select recovery
// strategies with errors.Is on the exported sentinels below.

// ErrPeerUnreachable reports that a remote peer could not be reached:
// dialing failed, the connection died, or every retry attempt was
// spent. Wrapped errors carry the underlying cause; test with
// errors.Is.
var ErrPeerUnreachable = errors.New("pdms: peer unreachable")

// ErrVersionMismatch reports a wire-protocol version mismatch at
// handshake time — the peer is alive but speaks an incompatible
// protocol, so retrying cannot help. Test with errors.Is.
var ErrVersionMismatch = errors.New("pdms: protocol version mismatch")

// ErrBudgetExhausted reports that a request's retry budget was spent
// before its remote operations completed. The failing peer is marked
// down and probed in the background; test with errors.Is.
var ErrBudgetExhausted = errors.New("pdms: retry budget exhausted")

// RetryPolicy declares how remote operations are retried: how many
// attempts each operation gets, how the delay between them grows, how
// long one attempt may run, and how many retries one request may spend
// in total. The zero value means "one attempt, no timeout, unlimited
// budget" — exactly the pre-policy behavior. The same type drives the
// transport client's redial compensation, so the old hard-wired
// one-shot retry is now one instance of this mechanism.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation
	// (1 = no retry). Values < 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry
	// (DefaultRetryBaseDelay when zero and a retry happens).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (DefaultRetryMaxDelay when
	// zero).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (2 when zero).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the actual sleep is uniform in [d·(1−J), d]. Zero keeps
	// DefaultRetryJitter; use a negative value to force no jitter.
	Jitter float64
	// OpTimeout bounds one attempt (0 = no per-attempt timeout). An
	// attempt that exceeds it counts as retryable — a hung peer must
	// not hang the query.
	OpTimeout time.Duration
	// Budget caps the total retries (not first attempts) one request
	// may spend across all of its remote operations; 0 = unlimited.
	// Exhaustion surfaces as ErrBudgetExhausted.
	Budget int
}

// Defaults for RetryPolicy fields left zero when a retry actually runs.
const (
	// DefaultRetryBaseDelay is the first backoff delay.
	DefaultRetryBaseDelay = 25 * time.Millisecond
	// DefaultRetryMaxDelay caps the exponential backoff.
	DefaultRetryMaxDelay = 1 * time.Second
	// DefaultRetryJitter randomizes half of each delay.
	DefaultRetryJitter = 0.5
)

// DefaultRetryPolicy is a reasonable serving-path policy: three
// attempts per op with 25ms→1s jittered exponential backoff, a 2s
// per-attempt timeout, and eight retries of total budget per request.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   DefaultRetryBaseDelay,
		MaxDelay:    DefaultRetryMaxDelay,
		Multiplier:  2,
		Jitter:      DefaultRetryJitter,
		OpTimeout:   2 * time.Second,
		Budget:      8,
	}
}

// attempts returns the effective per-op attempt count.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the jittered delay before retry number retry
// (1-based: the delay between attempt N and attempt N+1 is
// Backoff(N)). rnd supplies the jitter; nil means no jitter, so seeded
// callers (the fault-injection suites) stay deterministic.
func (p RetryPolicy) Backoff(retry int, rnd *rand.Rand) time.Duration {
	base, maxd, mult := p.BaseDelay, p.MaxDelay, p.Multiplier
	if base <= 0 {
		base = DefaultRetryBaseDelay
	}
	if maxd <= 0 {
		maxd = DefaultRetryMaxDelay
	}
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < retry; i++ {
		d *= mult
		if d >= float64(maxd) {
			break
		}
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = DefaultRetryJitter
	}
	if jitter > 0 && rnd != nil {
		if jitter > 1 {
			jitter = 1
		}
		d *= 1 - jitter*rnd.Float64()
	}
	return time.Duration(d)
}

// Retryable classifies an error: true means the operation may succeed
// if tried again (connection drops, resets, injected chaos), false
// means the failure is deterministic (protocol errors, unknown names,
// version mismatches) or the caller is gone (context cancellation).
// Per-attempt timeouts are handled by the retry runner, which can tell
// its own deadline from the caller's.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrVersionMismatch) || errors.Is(err, ErrBudgetExhausted) {
		return false
	}
	var we *relation.WireError
	if errors.As(err, &we) {
		// A typed error frame is the server answering deterministically —
		// except ErrCodeInternal, which reports a transient serving-side
		// failure mid-response.
		return we.Code == relation.ErrCodeInternal
	}
	return true
}

// retryBudget is the per-request pot of retries a policy's Budget
// declares, shared by every remote operation of one query prepare.
// Concurrent fetch workers draw from it, hence the lock.
type retryBudget struct {
	mu        sync.Mutex
	left      int
	unlimited bool
}

// newRetryBudget sizes a budget from the policy.
func newRetryBudget(p RetryPolicy) *retryBudget {
	return &retryBudget{left: p.Budget, unlimited: p.Budget <= 0}
}

// take withdraws one retry, reporting false when the pot is empty.
func (b *retryBudget) take() bool {
	if b == nil || b.unlimited {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.left <= 0 {
		return false
	}
	b.left--
	return true
}

// retryRand guards the process-wide jitter source: retries are rare,
// so one locked source beats per-request allocation.
var (
	retryRandMu sync.Mutex
	retryRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// jitterSleep sleeps for the policy's backoff before the given retry,
// honoring ctx.
func jitterSleep(ctx context.Context, p RetryPolicy, retry int) error {
	retryRandMu.Lock()
	d := p.Backoff(retry, retryRand)
	retryRandMu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryOp runs op under the policy: up to MaxAttempts tries, each
// bounded by OpTimeout, with capped jittered exponential backoff
// between them, every retry drawn from the request's shared budget.
// retries reports how many retries actually ran (observability — the
// perf ledger and the churn harness read the aggregate counter this
// feeds). The returned error is the last attempt's, wrapped with
// ErrBudgetExhausted when the pot ran dry, and classified by the
// caller (remote.go wraps unreachable-class failures with
// ErrPeerUnreachable).
func retryOp(ctx context.Context, p RetryPolicy, budget *retryBudget, op func(context.Context) error) (retries int, err error) {
	attempts := p.attempts()
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.OpTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.OpTimeout)
		}
		err = op(actx)
		cancel()
		if err == nil {
			return retries, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller is gone; whatever the attempt saw is really that.
			return retries, cerr
		}
		// An attempt that hit its own OpTimeout deadline is a hung peer:
		// retryable even though the error reads as DeadlineExceeded.
		timedOut := p.OpTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		if !timedOut && !Retryable(err) {
			return retries, err
		}
		if attempt >= attempts {
			return retries, err
		}
		if !budget.take() {
			return retries, fmt.Errorf("%w: %d retries spent, last error: %w", ErrBudgetExhausted, retries, err)
		}
		retries++
		if serr := jitterSleep(ctx, p, attempt); serr != nil {
			return retries, serr
		}
	}
}
