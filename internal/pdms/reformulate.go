package pdms

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cq"
	"repro/internal/glav"
	"repro/internal/view"
)

// ReformOptions tunes reformulation. The defaults enable the pruning
// heuristics the paper mentions ("our query answering algorithm is aided
// by heuristics that prune redundant and irrelevant paths through the
// space of mappings", §3.1.1); the flags exist so experiment E4 can
// ablate them.
type ReformOptions struct {
	// MaxDepth bounds the mapping-chain length explored (0 → default 8).
	MaxDepth int
	// MaxRewritings caps the number of final rewritings (0 → default 256).
	MaxRewritings int
	// NoVisitedPruning disables the heuristic that forbids reusing a
	// mapping along one derivation branch (guards against cycles).
	NoVisitedPruning bool
	// NoContainmentPruning disables dropping rewritings contained in an
	// already-kept rewriting.
	NoContainmentPruning bool
	// NoLAV disables the rewriting-using-views pass for mappings whose
	// source side is a single stored relation.
	NoLAV bool
}

func (o ReformOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 8
	}
	return o.MaxDepth
}

func (o ReformOptions) maxRewritings() int {
	if o.MaxRewritings <= 0 {
		return 256
	}
	return o.MaxRewritings
}

// ReformStats reports work done during reformulation; experiments E2/E4
// read these counters.
type ReformStats struct {
	// Explored counts expansion states visited.
	Explored int
	// Emitted counts complete rewritings before containment pruning.
	Emitted int
	// Kept counts rewritings that survived pruning.
	Kept int
	// PrunedVisited counts expansions skipped by the visited-mapping rule.
	PrunedVisited int
	// PrunedContained counts rewritings dropped by containment.
	PrunedContained int
	// PrunedDuplicate counts syntactically duplicate rewritings dropped.
	PrunedDuplicate int
	// PeersTouched counts distinct peers whose storage the kept
	// rewritings read — the number of peers contacted at execution.
	PeersTouched int
	// BatchBranches counts union branches executed on the columnar batch
	// kernel. Zero until the cursor has executed (Cursor.Stats fills it
	// live from the engine's counters).
	BatchBranches int
	// FallbackBranches counts union branches executed on the
	// tuple-at-a-time reference path, typically because a relation they
	// read has no current dictionary encoding.
	FallbackBranches int
}

// Reformulator rewrites queries posed in one peer's schema into unions of
// conjunctive queries over qualified stored relations. A Reformulator is
// single-use state for one Reformulate call chain; it is not safe for
// concurrent use.
type Reformulator struct {
	net     *Network
	opts    ReformOptions
	counter int
	ctx     context.Context
	done    <-chan struct{}
	steps   uint
}

// NewReformulator builds a reformulator over the network.
func NewReformulator(net *Network, opts ReformOptions) *Reformulator {
	return &Reformulator{net: net, opts: opts}
}

func (rf *Reformulator) fresh() string {
	rf.counter++
	return "_m" + strconv.Itoa(rf.counter) + "_"
}

// reformCheckInterval is how many expansion states are visited between
// cancellation polls; expansion states are orders of magnitude more
// expensive than rows, so the interval is smaller than the engine's.
const reformCheckInterval = 64

// tick polls cancellation every reformCheckInterval expansion states.
func (rf *Reformulator) tick() error {
	if rf.done == nil {
		return nil
	}
	rf.steps++
	if rf.steps%reformCheckInterval != 0 {
		return nil
	}
	select {
	case <-rf.done:
		return rf.ctx.Err()
	default:
		return nil
	}
}

// Reformulate turns a query over peer's schema into rewritings whose
// atoms are all qualified stored relations ("peer.rel"). Every returned
// rewriting is sound; together they approximate the certain answers
// reachable through the mapping graph within MaxDepth. The context
// cancels the mapping-graph search and the containment-pruning pass —
// both exponential in the worst case — between expansion states and
// containment checks respectively.
func (rf *Reformulator) Reformulate(ctx context.Context, peer string, q cq.Query) ([]cq.Query, *ReformStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rf.ctx, rf.done = ctx, ctx.Done()
	p := rf.net.Peer(peer)
	if p == nil {
		return nil, nil, fmt.Errorf("pdms: unknown peer %q", peer)
	}
	for _, pred := range q.Predicates() {
		if !p.HasRelation(pred) {
			return nil, nil, fmt.Errorf("pdms: query uses %q, not in peer %s's schema", pred, peer)
		}
	}
	stats := &ReformStats{}
	qq := glav.Qualify(q, peer)

	// Initial states: the query itself plus any LAV rewritings of it.
	// A LAV rewriting already traversed one mapping, so it starts with
	// one less hop of depth budget.
	type startState struct {
		q     cq.Query
		depth int
	}
	states := []startState{{qq, rf.opts.maxDepth()}}
	if !rf.opts.NoLAV {
		for _, lr := range rf.lavRewritings(peer, q, stats) {
			states = append(states, startState{lr, rf.opts.maxDepth() - 1})
		}
	}

	var kept []cq.Query
	seen := make(map[string]bool)
	for _, st := range states {
		if err := rf.expand(st.q, 0, st.depth, make(map[string]bool), stats, seen, &kept); err != nil {
			return nil, nil, err
		}
		if len(kept) >= rf.opts.maxRewritings() {
			break
		}
	}
	if !rf.opts.NoContainmentPruning {
		var err error
		kept, err = pruneContained(ctx, kept, stats)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.Kept = len(kept)
	stats.PeersTouched = countPeers(kept)
	return kept, stats, nil
}

// expand resolves pending atoms left to right. Index idx is the first
// unresolved atom; atoms before idx are final (stored) atoms.
func (rf *Reformulator) expand(q cq.Query, idx, depth int, used map[string]bool,
	stats *ReformStats, seen map[string]bool, out *[]cq.Query) error {
	if len(*out) >= rf.opts.maxRewritings() {
		return nil
	}
	if err := rf.tick(); err != nil {
		return err
	}
	stats.Explored++
	if idx >= len(q.Body) {
		key := canonicalKey(q)
		if seen[key] {
			stats.PrunedDuplicate++
			return nil
		}
		seen[key] = true
		stats.Emitted++
		*out = append(*out, q)
		return nil
	}
	atom := q.Body[idx]
	peerName, rel := glav.SplitQualified(atom.Pred)
	p := rf.net.Peer(peerName)

	// Option 1: read the relation from the owning peer's storage.
	if p != nil && p.HasRelation(rel) {
		if err := rf.expand(q, idx+1, depth, used, stats, seen, out); err != nil {
			return err
		}
	}

	// Option 2: unfold through each GAV mapping targeting this relation,
	// using the definition precomputed at mapping registration.
	if depth > 0 {
		defs := rf.net.gavDefs[atom.Pred]
		for mi, m := range rf.net.byTargetRel[atom.Pred] {
			if !rf.opts.NoVisitedPruning && used[m.ID] {
				stats.PrunedVisited++
				continue
			}
			expanded, err := cq.ExpandAtom(q, idx, defs[mi], rf.fresh())
			if err != nil {
				continue
			}
			used[m.ID] = true
			err = rf.expand(expanded, idx, depth-1, used, stats, seen, out)
			delete(used, m.ID)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// lavRewritings applies the "backward" direction: mappings whose source
// side is a single stored relation at another peer act as views over this
// peer's schema; rewriting the query with those views (plus identity
// views for the peer's own relations) yields alternative starting states
// whose atoms are then expanded as usual.
func (rf *Reformulator) lavRewritings(peer string, q cq.Query, stats *ReformStats) []cq.Query {
	var views []view.View
	remote := 0
	for _, m := range rf.net.byTargetPeer[peer] {
		if !m.IsLAV() {
			continue
		}
		// View named after the qualified source relation, defined by the
		// target-side query over this peer's schema.
		name := glav.QualifiedName(m.SrcPeer, m.SourceAtomPred())
		views = append(views, view.NewView(name, m.TgtQ))
		remote++
	}
	if remote == 0 {
		return nil
	}
	// Identity views let rewritings mix local atoms with remote views.
	p := rf.net.Peer(peer)
	for _, rel := range p.RelationNames() {
		sch := p.Schema(rel)
		vars := make([]cq.Term, sch.Arity())
		headVars := make([]string, sch.Arity())
		for i := range vars {
			v := "A" + strconv.Itoa(i)
			vars[i] = cq.V(v)
			headVars[i] = v
		}
		def := cq.Query{HeadPred: rel, HeadVars: headVars,
			Body: []cq.Atom{{Pred: rel, Args: vars}}}
		views = append(views, view.NewView(glav.QualifiedName(peer, rel), def))
	}
	rws, err := view.Rewrite(q, views, view.RewriteOptions{MaxRewritings: rf.opts.maxRewritings()})
	if err != nil {
		return nil
	}
	var out []cq.Query
	for _, rw := range rws {
		// Skip the all-identity rewriting: it duplicates the base state.
		allLocal := true
		for _, a := range rw.Query.Body {
			pn, _ := glav.SplitQualified(a.Pred)
			if pn != peer {
				allLocal = false
				break
			}
		}
		if allLocal {
			continue
		}
		out = append(out, rw.Query)
	}
	return out
}

// containCache memoizes Chandra–Merlin containment verdicts across
// reformulations, keyed by the canonical keys of the container and
// containee. Reformulators name fresh variables deterministically, so
// repeated reformulations of the same query hit the cache instead of
// re-running the exponential mapping search. Bounded: cleared when it
// outgrows containCacheMax entries.
var containCache = struct {
	sync.RWMutex
	m map[string]bool
}{m: make(map[string]bool)}

const containCacheMax = 1 << 16

// resetContainCache empties the containment memo (Network.InvalidateCaches).
func resetContainCache() {
	containCache.Lock()
	containCache.m = make(map[string]bool)
	containCache.Unlock()
}

// cachedContains answers cq.Contains(k, r) through the cache. The
// callers supply the precomputed canonical keys.
func cachedContains(k, r cq.Query, kKey, rKey string) bool {
	ck := kKey + "\x02" + rKey
	containCache.RLock()
	v, ok := containCache.m[ck]
	containCache.RUnlock()
	if ok {
		return v
	}
	v = cq.Contains(k, r)
	containCache.Lock()
	if len(containCache.m) >= containCacheMax {
		containCache.m = make(map[string]bool)
	}
	containCache.m[ck] = v
	containCache.Unlock()
	return v
}

// pruneContained removes rewritings contained in another kept rewriting.
// Canonical keys are computed once per rewriting and containment
// verdicts are memoized, so the O(n²) pass stops re-running the
// Chandra–Merlin search for pairs it has already decided. Each
// containment check is an exponential search in the worst case, so ctx
// is polled once per pair.
func pruneContained(ctx context.Context, rws []cq.Query, stats *ReformStats) ([]cq.Query, error) {
	done := ctx.Done()
	// Favor shorter rewritings as containers.
	sort.SliceStable(rws, func(i, j int) bool { return len(rws[i].Body) < len(rws[j].Body) })
	keys := make([]string, len(rws))
	for i, r := range rws {
		keys[i] = canonicalKey(r)
	}
	var kept []cq.Query
	var keptKeys []string
	for i, r := range rws {
		redundant := false
		for j, k := range kept {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			if cachedContains(k, r, keptKeys[j], keys[i]) {
				redundant = true
				break
			}
		}
		if redundant {
			stats.PrunedContained++
			continue
		}
		kept = append(kept, r)
		keptKeys = append(keptKeys, keys[i])
	}
	return kept, nil
}

func countPeers(rws []cq.Query) int {
	peers := make(map[string]bool)
	for _, r := range rws {
		for _, a := range r.Body {
			pn, _ := glav.SplitQualified(a.Pred)
			if pn != "" {
				peers[pn] = true
			}
		}
	}
	return len(peers)
}

func canonicalKey(q cq.Query) string {
	parts := make([]string, len(q.Body))
	for i, a := range q.Body {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	var b strings.Builder
	b.WriteString(q.HeadPred)
	b.WriteByte('(')
	for _, v := range q.HeadVars {
		b.WriteString(v)
		b.WriteByte(',')
	}
	b.WriteByte(')')
	for _, p := range parts {
		b.WriteString(p)
		b.WriteByte(';')
	}
	return b.String()
}
