package view

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
)

func updDB() *relation.Database {
	db := relation.NewDatabase()
	c := relation.New(relation.NewSchema("course",
		relation.Attr("title"), relation.Attr("instructor"), relation.Attr("dept")))
	c.MustInsert(relation.SV("DB"), relation.SV("halevy"), relation.SV("cs"))
	c.MustInsert(relation.SV("AI"), relation.SV("etzioni"), relation.SV("cs"))
	c.MustInsert(relation.SV("Anatomy"), relation.SV("gray"), relation.SV("med"))
	db.Put(c)
	return db
}

func TestTranslateInsertThroughSelection(t *testing.T) {
	db := updDB()
	// Selection view: CS courses with all columns exported.
	v := NewView("cs", cq.MustParse("v(T, I) :- course(T, I, 'cs')"))
	ups, err := TranslateUpdate(v, db, Updategram{
		Relation: "cs",
		Inserts:  []relation.Tuple{{relation.SV("ML"), relation.SV("domingos")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || len(ups[0].Inserts) != 1 {
		t.Fatalf("updates = %+v", ups)
	}
	got := ups[0].Inserts[0]
	// The selection constant is filled in.
	want := relation.Tuple{relation.SV("ML"), relation.SV("domingos"), relation.SV("cs")}
	if !got.Equal(want) {
		t.Errorf("translated = %v, want %v", got, want)
	}
}

func TestTranslateInsertThroughProjectionRejected(t *testing.T) {
	db := updDB()
	v := NewView("titles", cq.MustParse("v(T) :- course(T, I, D)"))
	_, err := TranslateUpdate(v, db, Updategram{
		Relation: "titles",
		Inserts:  []relation.Tuple{{relation.SV("ML")}},
	})
	if err == nil {
		t.Error("insert through projection must be rejected")
	}
}

func TestTranslateDeleteThroughProjection(t *testing.T) {
	db := updDB()
	v := NewView("bydept", cq.MustParse("v(D) :- course(T, I, D)"))
	ups, err := TranslateUpdate(v, db, Updategram{
		Relation: "bydept",
		Deletes:  []relation.Tuple{{relation.SV("cs")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || len(ups[0].Deletes) != 2 {
		t.Fatalf("deletes = %+v", ups)
	}
}

func TestTranslateJoinViewRejected(t *testing.T) {
	db := updDB()
	db.Put(relation.New(relation.NewSchema("person", relation.Attr("name"))))
	v := NewView("j", cq.MustParse("v(T, N) :- course(T, I, D), person(N)"))
	if _, err := TranslateUpdate(v, db, Updategram{Relation: "j",
		Inserts: []relation.Tuple{{relation.SV("x"), relation.SV("y")}}}); err == nil {
		t.Error("join view updates must be rejected")
	}
}

func TestTranslateArityAndUnknownBase(t *testing.T) {
	db := updDB()
	v := NewView("cs", cq.MustParse("v(T, I) :- course(T, I, 'cs')"))
	if _, err := TranslateUpdate(v, db, Updategram{
		Inserts: []relation.Tuple{{relation.SV("only_one")}}}); err == nil {
		t.Error("bad insert arity should fail")
	}
	if _, err := TranslateUpdate(v, db, Updategram{
		Deletes: []relation.Tuple{{relation.SV("a")}}}); err == nil {
		t.Error("bad delete arity should fail")
	}
	ghost := NewView("g", cq.MustParse("v(X) :- ghost(X)"))
	if _, err := TranslateUpdate(ghost, db, Updategram{}); err == nil {
		t.Error("unknown base relation should fail")
	}
	empty, err := TranslateUpdate(v, db, Updategram{})
	if err != nil || empty != nil {
		t.Errorf("empty updategram should translate to nothing: %v %v", empty, err)
	}
}

func TestApplyThroughViewRoundTrip(t *testing.T) {
	db := updDB()
	v := NewView("cs", cq.MustParse("v(T, I) :- course(T, I, 'cs')"))
	err := ApplyThroughView(v, db, Updategram{
		Relation: "cs",
		Inserts:  []relation.Tuple{{relation.SV("ML"), relation.SV("domingos")}},
		Deletes:  []relation.Tuple{{relation.SV("DB"), relation.SV("halevy")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Get("course")
	if !c.Contains(relation.Tuple{relation.SV("ML"), relation.SV("domingos"), relation.SV("cs")}) {
		t.Error("insert not applied to base")
	}
	if c.Contains(relation.Tuple{relation.SV("DB"), relation.SV("halevy"), relation.SV("cs")}) {
		t.Error("delete not applied to base")
	}
	// Non-CS rows untouched.
	if !c.Contains(relation.Tuple{relation.SV("Anatomy"), relation.SV("gray"), relation.SV("med")}) {
		t.Error("unrelated row disturbed")
	}
}

func TestApplyThroughViewRollsBackOnError(t *testing.T) {
	db := updDB()
	v := NewView("titles", cq.MustParse("v(T) :- course(T, I, D)"))
	before := db.Get("course").Clone()
	err := ApplyThroughView(v, db, Updategram{
		Relation: "titles",
		Inserts:  []relation.Tuple{{relation.SV("ML")}},
	})
	if err == nil {
		t.Fatal("projection insert should fail")
	}
	if !db.Get("course").Equal(before) {
		t.Error("failed update mutated the base")
	}
}

func TestTranslateDeleteRespectsSelection(t *testing.T) {
	// Deleting "cs" rows through a med-selection view touches nothing.
	db := updDB()
	v := NewView("med", cq.MustParse("v(T, I) :- course(T, I, 'med')"))
	ups, err := TranslateUpdate(v, db, Updategram{
		Relation: "med",
		Deletes:  []relation.Tuple{{relation.SV("DB"), relation.SV("halevy")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ups != nil {
		t.Errorf("selection mismatch should delete nothing: %+v", ups)
	}
}

func TestTranslateRepeatedVariable(t *testing.T) {
	db := relation.NewDatabase()
	e := relation.New(relation.NewSchema("edge", relation.Attr("a"), relation.Attr("b")))
	e.MustInsert(relation.SV("x"), relation.SV("x"))
	e.MustInsert(relation.SV("x"), relation.SV("y"))
	db.Put(e)
	v := NewView("loops", cq.MustParse("v(A) :- edge(A, A)"))
	ups, err := TranslateUpdate(v, db, Updategram{
		Relation: "loops",
		Deletes:  []relation.Tuple{{relation.SV("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || len(ups[0].Deletes) != 1 {
		t.Fatalf("updates = %+v", ups)
	}
	if !ups[0].Deletes[0].Equal(relation.Tuple{relation.SV("x"), relation.SV("x")}) {
		t.Errorf("deleted %v", ups[0].Deletes[0])
	}
}
