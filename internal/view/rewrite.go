// Package view implements answering queries using views — the
// local-as-view half of Piazza's GLAV reformulation (§3.1.1: "it performs
// query unfolding and query reformulation using views") — plus
// materialized views with incremental maintenance driven by updategrams
// (§3.1.2).
package view

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cq"
)

// View is a named query definition: Def.HeadPred is the view's name; the
// body is over base (stored) relations.
type View struct {
	Name string
	Def  cq.Query
}

// NewView builds a view, normalizing the definition's head predicate to
// the view name.
func NewView(name string, def cq.Query) View {
	d := def.Clone()
	d.HeadPred = name
	return View{Name: name, Def: d}
}

// RewriteOptions tunes the rewriting search.
type RewriteOptions struct {
	// MaxRewritings caps the number of returned rewritings (0 = no cap).
	MaxRewritings int
	// RequireEquivalent keeps only rewritings equivalent to the query
	// (after expansion); otherwise maximally-contained rewritings are
	// also returned.
	RequireEquivalent bool
}

// Rewriting is one candidate rewriting together with its expansion.
type Rewriting struct {
	// Query is phrased over view names.
	Query cq.Query
	// Expansion is Query with views unfolded back to base relations.
	Expansion cq.Query
	// Equivalent records whether Expansion ≡ the original query.
	Equivalent bool
}

// Rewrite finds conjunctive rewritings of q that use only the given
// views, in the style of the bucket algorithm: for each subgoal collect
// views whose expansions can cover it, combine one choice per subgoal,
// and validate each combination by containment of its expansion in q
// (sound) and, when possible, q in the expansion (equivalent).
//
// Returned rewritings are sorted: equivalent first, then fewer atoms.
func Rewrite(q cq.Query, views []View, opts RewriteOptions) ([]Rewriting, error) {
	if !q.IsSafe() {
		return nil, fmt.Errorf("view: unsafe query %s", q)
	}
	buckets, err := buildBuckets(q, views)
	if err != nil {
		return nil, err
	}
	for _, b := range buckets {
		if len(b) == 0 {
			return nil, nil // some subgoal is uncoverable: no rewriting
		}
	}
	unfolder := cq.NewUnfolder(nil)
	for _, v := range views {
		unfolder.AddDef(v.Def)
	}
	var out []Rewriting
	seen := make(map[string]bool)
	var combine func(i int, chosen []bucketEntry) bool
	combine = func(i int, chosen []bucketEntry) bool {
		if i == len(buckets) {
			rw, ok := assembleRewriting(q, chosen)
			if !ok {
				return true
			}
			key := canonicalKey(rw)
			if seen[key] {
				return true
			}
			seen[key] = true
			expansions, err := unfolder.Unfold(rw, len(rw.Body)*2+2)
			if err != nil || len(expansions) != 1 {
				return true
			}
			exp := expansions[0]
			if !cq.Contains(q, exp) {
				return true // unsound combination
			}
			eq := cq.Contains(exp, q)
			if opts.RequireEquivalent && !eq {
				return true
			}
			out = append(out, Rewriting{Query: rw, Expansion: exp, Equivalent: eq})
			return opts.MaxRewritings == 0 || len(out) < opts.MaxRewritings
		}
		for _, entry := range buckets[i] {
			if !combine(i+1, append(chosen, entry)) {
				return false
			}
		}
		return true
	}
	combine(0, nil)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Equivalent != out[j].Equivalent {
			return out[i].Equivalent
		}
		return len(out[i].Query.Body) < len(out[j].Query.Body)
	})
	return out, nil
}

// bucketEntry records that view (renamed as atom) can cover subgoal i,
// with the head-variable substitution already applied.
type bucketEntry struct {
	viewAtom cq.Atom
	// coveredVars maps query vars covered by this view use.
	coveredVars map[string]bool
}

// buildBuckets creates, per query subgoal, the view atoms that can cover
// it: a view covers subgoal g if some atom in the view's definition
// unifies with g such that every distinguished (head) position needed by
// the query is exported by the view head.
func buildBuckets(q cq.Query, views []View) ([][]bucketEntry, error) {
	headSet := make(map[string]bool)
	for _, v := range q.HeadVars {
		headSet[v] = true
	}
	// joinVars: vars shared between subgoals — these must be exported too.
	count := make(map[string]int)
	for _, a := range q.Body {
		for _, v := range a.Vars() {
			count[v]++
		}
	}
	needed := func(v string) bool { return headSet[v] || count[v] > 1 }

	buckets := make([][]bucketEntry, len(q.Body))
	vcounter := 0
	for gi, goal := range q.Body {
		for _, view := range views {
			def := view.Def
			for _, va := range def.Body {
				if va.Pred != goal.Pred || len(va.Args) != len(goal.Args) {
					continue
				}
				vcounter++
				entry, ok := coverGoal(goal, view, va, needed, "v"+strconv.Itoa(vcounter)+"_")
				if ok {
					buckets[gi] = append(buckets[gi], entry)
				}
			}
		}
	}
	return buckets, nil
}

// coverGoal tries to use view (via its body atom va) to cover goal.
// It renames the view apart, unifies va's args with goal's args, and
// checks that every needed goal variable lands on an exported position.
func coverGoal(goal cq.Atom, view View, va cq.Atom, needed func(string) bool, prefix string) (bucketEntry, bool) {
	def := view.Def.RenameVars(prefix)
	// Locate the renamed va inside def (same position by construction:
	// find the first body atom with matching pred & arg pattern).
	var target cq.Atom
	found := false
	for _, a := range def.Body {
		if a.Pred == va.Pred && len(a.Args) == len(va.Args) && matchesRenamed(a, va, prefix) {
			target = a
			found = true
			break
		}
	}
	if !found {
		return bucketEntry{}, false
	}
	exported := make(map[string]int) // renamed def head var -> position
	for i, hv := range def.HeadVars {
		if _, dup := exported[hv]; !dup {
			exported[hv] = i
		}
	}
	// Build the view atom's argument list: start with fresh existential
	// vars for each head position; unification below overwrites.
	viewArgs := make([]cq.Term, len(def.HeadVars))
	for i := range viewArgs {
		viewArgs[i] = cq.V(prefix + "f" + strconv.Itoa(i))
	}
	covered := make(map[string]bool)
	for i, gArg := range goal.Args {
		vArg := target.Args[i]
		switch {
		case gArg.IsVar:
			pos, isExported := exported[vArg.Var]
			if !vArg.IsVar {
				// view has a constant where the query has a variable: the
				// view restricts the goal; only usable if the query var is
				// not needed elsewhere (it would bind to one constant —
				// sound for containment but we reject for simplicity).
				if needed(gArg.Var) {
					return bucketEntry{}, false
				}
				continue
			}
			if needed(gArg.Var) {
				if !isExported {
					return bucketEntry{}, false
				}
				viewArgs[pos] = cq.V(gArg.Var)
				covered[gArg.Var] = true
			} else if isExported {
				viewArgs[pos] = cq.V(gArg.Var)
				covered[gArg.Var] = true
			}
		default: // goal has a constant
			if vArg.IsVar {
				pos, isExported := exported[vArg.Var]
				if !isExported {
					return bucketEntry{}, false // can't force constant on existential
				}
				viewArgs[pos] = gArg
			} else if vArg.Const != gArg.Const {
				return bucketEntry{}, false
			}
		}
	}
	return bucketEntry{
		viewAtom:    cq.Atom{Pred: view.Name, Args: viewArgs},
		coveredVars: covered,
	}, true
}

// matchesRenamed reports whether renamed atom a corresponds to original va
// under the given prefix.
func matchesRenamed(a, va cq.Atom, prefix string) bool {
	for i := range a.Args {
		ra, ov := a.Args[i], va.Args[i]
		if ra.IsVar != ov.IsVar {
			return false
		}
		if ra.IsVar {
			if ra.Var != prefix+ov.Var {
				return false
			}
		} else if ra.Const != ov.Const {
			return false
		}
	}
	return true
}

// assembleRewriting joins the chosen bucket entries into one conjunctive
// query over view predicates; fails if some head variable is uncovered.
func assembleRewriting(q cq.Query, chosen []bucketEntry) (cq.Query, bool) {
	covered := make(map[string]bool)
	var body []cq.Atom
	for _, e := range chosen {
		body = append(body, e.viewAtom.Clone())
		for v := range e.coveredVars {
			covered[v] = true
		}
	}
	for _, hv := range q.HeadVars {
		if !covered[hv] {
			return cq.Query{}, false
		}
	}
	return cq.Query{HeadPred: q.HeadPred, HeadVars: append([]string(nil), q.HeadVars...), Body: body}, true
}

func canonicalKey(q cq.Query) string {
	parts := make([]string, len(q.Body))
	for i, a := range q.Body {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	key := ""
	for _, p := range parts {
		key += p + ";"
	}
	return key
}
