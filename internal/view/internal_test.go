package view

import (
	"testing"

	"repro/internal/relation"
)

func TestRestoreSnapshot(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New(relation.NewSchema("r", relation.Attr("x")))
	r.MustInsert(relation.SV("original"))
	db.Put(r)
	snapshot := db.Clone()
	db.Get("r").MustInsert(relation.SV("mutation"))
	restore(db, snapshot)
	if db.Get("r").Len() != 1 {
		t.Errorf("restore failed: %v", db.Get("r").Rows())
	}
	if !db.Get("r").Contains(relation.Tuple{relation.SV("original")}) {
		t.Error("original row lost")
	}
}
