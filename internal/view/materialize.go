package view

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/relation"
)

// Updategram describes a delta on one base relation. Piazza "treats
// updates as first-class citizens ... in the form of updategrams" and
// combines base updategrams into view updategrams (§3.1.2).
type Updategram struct {
	Relation string
	Inserts  []relation.Tuple
	Deletes  []relation.Tuple
}

// IsEmpty reports whether the updategram carries no changes.
func (u Updategram) IsEmpty() bool { return len(u.Inserts) == 0 && len(u.Deletes) == 0 }

// Size returns the number of changed tuples.
func (u Updategram) Size() int { return len(u.Inserts) + len(u.Deletes) }

// Apply replays the updategram against a database. Deletes are applied
// before inserts so a tuple present in both ends up present.
func (u Updategram) Apply(db *relation.Database) error {
	r := db.Get(u.Relation)
	if r == nil {
		return fmt.Errorf("view: updategram for unknown relation %q", u.Relation)
	}
	for _, t := range u.Deletes {
		r.Delete(t)
	}
	for _, t := range u.Inserts {
		if err := r.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// MaterializedView holds the extent of a view definition over some base
// database, supporting full refresh and incremental delta application.
type MaterializedView struct {
	View    View
	Extent  *relation.Relation
	fullLen int // rows at last full refresh, for staleness accounting
}

// NewMaterialized creates an unpopulated materialized view.
func NewMaterialized(v View) *MaterializedView {
	return &MaterializedView{View: v}
}

// Refresh recomputes the extent from scratch.
func (m *MaterializedView) Refresh(db *relation.Database) error {
	r, err := cq.Eval(db, m.View.Def)
	if err != nil {
		return err
	}
	m.Extent = r
	m.fullLen = r.Len()
	return nil
}

// ViewDelta computes the updategram on the view induced by base-relation
// updategram u, given the post-update database state. It uses the
// standard delta rule for select-project-join views:
//
//	Δ(V) over body a1..an with Δ on relation R =
//	   ⋃ over occurrences of R:  a1 ⋈ .. ⋈ ΔR ⋈ .. ⋈ an
//
// evaluated with deletes against the pre-state and inserts against the
// post-state. For simplicity (and correctness under set semantics) this
// implementation computes the delta by evaluating the view body with the
// changed atom's relation replaced by the delta tuples; a final
// existence check against the other state removes spurious deletes.
//
// When one base update fans out to many views (the data-placement case),
// prepare the update once with PrepareUpdate and call DeltaFrom per
// view instead — ViewDelta rebuilds the shared scratch state per call.
func (m *MaterializedView) ViewDelta(pre, post *relation.Database, u Updategram) (Updategram, error) {
	p, err := PrepareUpdate(pre, post, u)
	if err != nil {
		return Updategram{Relation: m.View.Name}, err
	}
	return m.DeltaFrom(p)
}

// PreparedUpdate is the per-base-update evaluation state shared by every
// view affected by one updategram: the pre/post databases plus scratch
// databases with the delta tuples installed as a relation, built once
// and reused by each affected view's DeltaFrom. Without it, propagating
// one update to N subscriptions rebuilds N identical scratch databases.
type PreparedUpdate struct {
	u         Updategram
	post      *relation.Database
	insDB     *relation.Database // post state with Δ installed; nil without inserts
	delDB     *relation.Database // pre state with Δ installed; nil without deletes
	deltaName string
}

// PrepareUpdate builds the shared delta-evaluation state for one base
// updategram against the pre- and post-update database states.
func PrepareUpdate(pre, post *relation.Database, u Updategram) (*PreparedUpdate, error) {
	p := &PreparedUpdate{u: u, post: post, deltaName: "\x00delta_" + u.Relation}
	var err error
	if len(u.Inserts) > 0 {
		if p.insDB, err = deltaDB(post, u.Relation, p.deltaName, u.Inserts); err != nil {
			return nil, err
		}
	}
	if len(u.Deletes) > 0 {
		if p.delDB, err = deltaDB(pre, u.Relation, p.deltaName, u.Deletes); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// deltaDB returns db plus the delta tuples installed under deltaName
// with the updated relation's schema.
func deltaDB(db *relation.Database, relName, deltaName string, tuples []relation.Tuple) (*relation.Database, error) {
	base := db.Get(relName)
	if base == nil {
		return nil, fmt.Errorf("view: unknown relation %q", relName)
	}
	scratch := relation.NewDatabase()
	for _, r := range db.Relations() {
		scratch.Put(r)
	}
	dr := relation.New(relation.Schema{Name: deltaName, Attrs: base.Schema.Attrs})
	for _, t := range tuples {
		if err := dr.Insert(t); err != nil {
			return nil, err
		}
	}
	scratch.Put(dr)
	return scratch, nil
}

// DeltaFrom computes this view's updategram from a shared prepared
// update — the fan-out form of ViewDelta.
func (m *MaterializedView) DeltaFrom(p *PreparedUpdate) (Updategram, error) {
	out := Updategram{Relation: m.View.Name}
	occurrences := 0
	for _, a := range m.View.Def.Body {
		if a.Pred == p.u.Relation {
			occurrences++
		}
	}
	if occurrences == 0 {
		return out, nil
	}
	if len(p.u.Inserts) > 0 {
		ins, err := deltaEval(p.insDB, m.View.Def, p.u.Relation, p.deltaName)
		if err != nil {
			return out, err
		}
		for _, t := range ins {
			if m.Extent == nil || !m.Extent.Contains(t) {
				out.Inserts = append(out.Inserts, t)
			}
		}
	}
	if len(p.u.Deletes) > 0 {
		dels, err := deltaEval(p.delDB, m.View.Def, p.u.Relation, p.deltaName)
		if err != nil {
			return out, err
		}
		// A derived deletion only holds if the tuple is no longer
		// derivable in the post state (other derivations may remain).
		for _, t := range dels {
			still, err := derivable(p.post, m.View.Def, t)
			if err != nil {
				return out, err
			}
			if !still {
				out.Deletes = append(out.Deletes, t)
			}
		}
	}
	out.Inserts = dedupTuples(out.Inserts)
	out.Deletes = dedupTuples(out.Deletes)
	return out, nil
}

// ApplyDelta updates the extent with a view updategram.
func (m *MaterializedView) ApplyDelta(d Updategram) error {
	if m.Extent == nil {
		return fmt.Errorf("view: ApplyDelta before Refresh on %s", m.View.Name)
	}
	for _, t := range d.Deletes {
		m.Extent.Delete(t)
	}
	for _, t := range d.Inserts {
		if !m.Extent.Contains(t) {
			if err := m.Extent.Insert(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// deltaEval evaluates the view body against a prepared scratch database
// (base state plus delta relation), substituting the delta for one
// occurrence of relName at a time and unioning the results.
func deltaEval(scratch *relation.Database, def cq.Query, relName, deltaName string) ([]relation.Tuple, error) {
	var results []relation.Tuple
	for i, a := range def.Body {
		if a.Pred != relName {
			continue
		}
		q := def.Clone()
		q.Body[i].Pred = deltaName
		r, err := cq.Eval(scratch, q)
		if err != nil {
			return nil, err
		}
		results = append(results, r.Rows()...)
	}
	return results, nil
}

// derivable reports whether tuple t is an answer of def over db.
func derivable(db *relation.Database, def cq.Query, t relation.Tuple) (bool, error) {
	r, err := cq.Eval(db, def)
	if err != nil {
		return false, err
	}
	return r.Contains(t), nil
}

func dedupTuples(ts []relation.Tuple) []relation.Tuple {
	if len(ts) < 2 {
		return ts
	}
	seen := make(map[string]bool, len(ts))
	out := ts[:0]
	for _, t := range ts {
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}
