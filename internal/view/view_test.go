package view

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
)

func baseDB() *relation.Database {
	db := relation.NewDatabase()
	course := relation.New(relation.NewSchema("course",
		relation.Attr("title"), relation.Attr("instructor"), relation.IntAttr("size")))
	course.MustInsert(relation.SV("DB"), relation.SV("halevy"), relation.IV(40))
	course.MustInsert(relation.SV("AI"), relation.SV("etzioni"), relation.IV(60))
	course.MustInsert(relation.SV("OS"), relation.SV("levy"), relation.IV(30))
	db.Put(course)
	person := relation.New(relation.NewSchema("person",
		relation.Attr("name"), relation.Attr("dept")))
	person.MustInsert(relation.SV("halevy"), relation.SV("cs"))
	person.MustInsert(relation.SV("etzioni"), relation.SV("cs"))
	db.Put(person)
	return db
}

func TestRewriteSingleView(t *testing.T) {
	v := NewView("v_teaches", cq.MustParse("v(T, I) :- course(T, I, S)"))
	q := cq.MustParse("q(T, I) :- course(T, I, S)")
	rws, err := Rewrite(q, []View{v}, RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("no rewriting found")
	}
	if !rws[0].Equivalent {
		t.Errorf("rewriting should be equivalent: %v", rws[0].Query)
	}
	if rws[0].Query.Body[0].Pred != "v_teaches" {
		t.Errorf("rewriting uses %v", rws[0].Query.Body)
	}
}

func TestRewriteProjectionLosesVariable(t *testing.T) {
	// View exports only title; query needs instructor → no rewriting.
	v := NewView("v_titles", cq.MustParse("v(T) :- course(T, I, S)"))
	q := cq.MustParse("q(T, I) :- course(T, I, S)")
	rws, err := Rewrite(q, []View{v}, RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 0 {
		t.Errorf("expected no rewriting, got %v", rws)
	}
}

func TestRewriteJoinAcrossViews(t *testing.T) {
	v1 := NewView("v_course", cq.MustParse("v(T, I) :- course(T, I, S)"))
	v2 := NewView("v_person", cq.MustParse("v(N, D) :- person(N, D)"))
	q := cq.MustParse("q(T, D) :- course(T, I, S), person(I, D)")
	rws, err := Rewrite(q, []View{v1, v2}, RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("no rewriting")
	}
	best := rws[0]
	if !best.Equivalent || len(best.Query.Body) != 2 {
		t.Errorf("best rewriting = %+v", best)
	}
	// Execute the rewriting against materialized views and compare with
	// direct evaluation.
	db := baseDB()
	direct, err := cq.Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	vdb := relation.NewDatabase()
	for _, v := range []View{v1, v2} {
		m := NewMaterialized(v)
		if err := m.Refresh(db); err != nil {
			t.Fatal(err)
		}
		ext := relation.New(relation.Schema{Name: v.Name, Attrs: m.Extent.Schema.Attrs})
		for _, row := range m.Extent.Rows() {
			if err := ext.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		vdb.Put(ext)
	}
	viaViews, err := cq.Eval(vdb, best.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(viaViews) {
		t.Errorf("rewriting answers %v != direct %v", viaViews.Rows(), direct.Rows())
	}
}

func TestRewriteWithConstant(t *testing.T) {
	v := NewView("v_all", cq.MustParse("v(T, I, S) :- course(T, I, S)"))
	q := cq.MustParse("q(T) :- course(T, 'halevy', S)")
	rws, err := Rewrite(q, []View{v}, RewriteOptions{RequireEquivalent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("no rewriting")
	}
	// Constant must be pushed into the view atom.
	found := false
	for _, arg := range rws[0].Query.Body[0].Args {
		if !arg.IsVar && arg.Const == relation.SV("halevy") {
			found = true
		}
	}
	if !found {
		t.Errorf("constant not pushed: %v", rws[0].Query)
	}
}

func TestRewriteViewWithConstantSelection(t *testing.T) {
	// View restricted to halevy cannot answer an unrestricted query
	// equivalently, but is a contained rewriting... our coverGoal rejects
	// binding a needed var to a view constant, so no rewriting at all.
	v := NewView("v_h", cq.MustParse("v(T, S) :- course(T, 'halevy', S)"))
	q := cq.MustParse("q(T, I) :- course(T, I, S)")
	rws, err := Rewrite(q, []View{v}, RewriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 0 {
		t.Errorf("expected no rewriting, got %v", rws)
	}
}

func TestRewriteMaxRewritings(t *testing.T) {
	v1 := NewView("v1", cq.MustParse("v(T, I) :- course(T, I, S)"))
	v2 := NewView("v2", cq.MustParse("v(T, I) :- course(T, I, S)"))
	q := cq.MustParse("q(T, I) :- course(T, I, S)")
	rws, err := Rewrite(q, []View{v1, v2}, RewriteOptions{MaxRewritings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) != 1 {
		t.Errorf("MaxRewritings ignored: %d", len(rws))
	}
}

func TestUpdategramApply(t *testing.T) {
	db := baseDB()
	u := Updategram{
		Relation: "course",
		Inserts:  []relation.Tuple{{relation.SV("ML"), relation.SV("domingos"), relation.IV(70)}},
		Deletes:  []relation.Tuple{{relation.SV("OS"), relation.SV("levy"), relation.IV(30)}},
	}
	if u.IsEmpty() || u.Size() != 2 {
		t.Error("Size/IsEmpty broken")
	}
	if err := u.Apply(db); err != nil {
		t.Fatal(err)
	}
	c := db.Get("course")
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Contains(relation.Tuple{relation.SV("OS"), relation.SV("levy"), relation.IV(30)}) {
		t.Error("delete not applied")
	}
	bad := Updategram{Relation: "nope"}
	if err := bad.Apply(db); err == nil {
		t.Error("unknown relation should fail")
	}
}

func TestMaterializedRefreshAndDelta(t *testing.T) {
	db := baseDB()
	v := NewView("cs_courses", cq.MustParse("v(T, I) :- course(T, I, S), person(I, 'cs')"))
	m := NewMaterialized(v)
	if err := m.ApplyDelta(Updategram{}); err == nil {
		t.Error("ApplyDelta before Refresh should fail")
	}
	if err := m.Refresh(db); err != nil {
		t.Fatal(err)
	}
	if m.Extent.Len() != 2 {
		t.Fatalf("extent = %v", m.Extent.Rows())
	}
	// Insert a new CS course and propagate incrementally.
	pre := db.Clone()
	u := Updategram{Relation: "course",
		Inserts: []relation.Tuple{{relation.SV("ML"), relation.SV("halevy"), relation.IV(70)}}}
	if err := u.Apply(db); err != nil {
		t.Fatal(err)
	}
	d, err := m.ViewDelta(pre, db, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inserts) != 1 || len(d.Deletes) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if err := m.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	// Incremental result equals recompute.
	m2 := NewMaterialized(v)
	if err := m2.Refresh(db); err != nil {
		t.Fatal(err)
	}
	if !m.Extent.Equal(m2.Extent) {
		t.Errorf("incremental %v != recompute %v", m.Extent.Rows(), m2.Extent.Rows())
	}
}

func TestMaterializedDeleteDelta(t *testing.T) {
	db := baseDB()
	v := NewView("cs_courses", cq.MustParse("v(T, I) :- course(T, I, S), person(I, 'cs')"))
	m := NewMaterialized(v)
	if err := m.Refresh(db); err != nil {
		t.Fatal(err)
	}
	pre := db.Clone()
	u := Updategram{Relation: "course",
		Deletes: []relation.Tuple{{relation.SV("DB"), relation.SV("halevy"), relation.IV(40)}}}
	if err := u.Apply(db); err != nil {
		t.Fatal(err)
	}
	d, err := m.ViewDelta(pre, db, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deletes) != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if err := m.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	m2 := NewMaterialized(v)
	if err := m2.Refresh(db); err != nil {
		t.Fatal(err)
	}
	if !m.Extent.Equal(m2.Extent) {
		t.Errorf("incremental %v != recompute %v", m.Extent.Rows(), m2.Extent.Rows())
	}
}

func TestMaterializedDeleteWithAlternateDerivation(t *testing.T) {
	// Tuple derivable two ways: deleting one derivation must NOT delete
	// the view tuple.
	db := relation.NewDatabase()
	r := relation.New(relation.NewSchema("r", relation.Attr("a"), relation.Attr("b")))
	r.MustInsert(relation.SV("x"), relation.SV("p"))
	r.MustInsert(relation.SV("x"), relation.SV("q"))
	db.Put(r)
	v := NewView("firsts", cq.MustParse("v(A) :- r(A, B)"))
	m := NewMaterialized(v)
	if err := m.Refresh(db); err != nil {
		t.Fatal(err)
	}
	pre := db.Clone()
	u := Updategram{Relation: "r",
		Deletes: []relation.Tuple{{relation.SV("x"), relation.SV("p")}}}
	if err := u.Apply(db); err != nil {
		t.Fatal(err)
	}
	d, err := m.ViewDelta(pre, db, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deletes) != 0 {
		t.Errorf("spurious delete: %+v", d)
	}
}

func TestIncrementalEqualsRecomputeProperty(t *testing.T) {
	// Random updategram streams: incremental maintenance must always
	// match full recomputation (the E8 invariant).
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		db := relation.NewDatabase()
		r := relation.New(relation.NewSchema("edge", relation.Attr("a"), relation.Attr("b")))
		for i := 0; i < 6; i++ {
			r.MustInsert(randV(rnd), randV(rnd))
		}
		db.Put(r)
		v := NewView("paths", cq.MustParse("v(X, Z) :- edge(X, Y), edge(Y, Z)"))
		m := NewMaterialized(v)
		if err := m.Refresh(db); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 6; step++ {
			pre := db.Clone()
			u := Updategram{Relation: "edge"}
			if rnd.Intn(2) == 0 {
				u.Inserts = []relation.Tuple{{randV(rnd), randV(rnd)}}
			} else if r.Len() > 0 {
				u.Deletes = []relation.Tuple{r.Row(rnd.Intn(r.Len())).Clone()}
			}
			if err := u.Apply(db); err != nil {
				t.Fatal(err)
			}
			d, err := m.ViewDelta(pre, db, u)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			check := NewMaterialized(v)
			if err := check.Refresh(db); err != nil {
				t.Fatal(err)
			}
			if !m.Extent.Equal(check.Extent) {
				t.Fatalf("trial %d step %d: incremental %v != recompute %v",
					trial, step, m.Extent.Rows(), check.Extent.Rows())
			}
		}
	}
}

func randV(rnd *rand.Rand) relation.Value {
	return relation.SV(string(rune('a' + rnd.Intn(4))))
}

func TestViewDeltaUnrelatedRelation(t *testing.T) {
	db := baseDB()
	v := NewView("titles", cq.MustParse("v(T) :- course(T, I, S)"))
	m := NewMaterialized(v)
	if err := m.Refresh(db); err != nil {
		t.Fatal(err)
	}
	u := Updategram{Relation: "person",
		Inserts: []relation.Tuple{{relation.SV("new"), relation.SV("cs")}}}
	d, err := m.ViewDelta(db, db, u)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Errorf("unrelated update produced delta: %+v", d)
	}
}
