package view

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/relation"
)

// TranslateUpdate implements the §3.1.2 extension the paper flags
// ("ultimately, we want to support updating of data through views"):
// it translates an updategram expressed against a view into updategrams
// on the base relations, refusing translations that would be ambiguous
// or side-effecting.
//
// Supported views are select/project views: a single body atom, possibly
// with constants (selection) and projected-away variables. Inserts
// through a projection are rejected (the hidden columns' values are
// unknowable); inserts through a selection fill in the selection
// constants. Deletes remove every base tuple that derives the deleted
// view tuple, which requires the current base state.
func TranslateUpdate(v View, db *relation.Database, u Updategram) ([]Updategram, error) {
	def := v.Def
	if len(def.Body) != 1 {
		return nil, fmt.Errorf("view: update through join view %s is ambiguous", v.Name)
	}
	atom := def.Body[0]
	base := db.Get(atom.Pred)
	if base == nil {
		return nil, fmt.Errorf("view: unknown base relation %q", atom.Pred)
	}
	if base.Schema.Arity() != len(atom.Args) {
		return nil, fmt.Errorf("view: %s arity mismatch with %s", v.Name, atom.Pred)
	}
	headPos := make(map[string]int, len(def.HeadVars))
	for i, hv := range def.HeadVars {
		if _, dup := headPos[hv]; !dup {
			headPos[hv] = i
		}
	}
	out := Updategram{Relation: atom.Pred}

	for _, t := range u.Inserts {
		if len(t) != len(def.HeadVars) {
			return nil, fmt.Errorf("view: insert arity %d, view arity %d", len(t), len(def.HeadVars))
		}
		baseTuple := make(relation.Tuple, len(atom.Args))
		for col, arg := range atom.Args {
			switch {
			case !arg.IsVar:
				baseTuple[col] = arg.Const
			default:
				pos, exported := headPos[arg.Var]
				if !exported {
					return nil, fmt.Errorf("view: insert through projection view %s: column %d of %s has no value",
						v.Name, col, atom.Pred)
				}
				baseTuple[col] = t[pos]
			}
		}
		if err := base.Schema.Compatible(baseTuple); err != nil {
			return nil, fmt.Errorf("view: translated insert invalid: %w", err)
		}
		out.Inserts = append(out.Inserts, baseTuple)
	}

	for _, t := range u.Deletes {
		if len(t) != len(def.HeadVars) {
			return nil, fmt.Errorf("view: delete arity %d, view arity %d", len(t), len(def.HeadVars))
		}
		// Delete every base tuple matching the pattern.
		for _, row := range base.Rows() {
			if matchesPattern(atom, def.HeadVars, headPos, row, t) {
				out.Deletes = append(out.Deletes, row.Clone())
			}
		}
	}
	out.Deletes = dedupTuples(out.Deletes)
	if out.IsEmpty() {
		return nil, nil
	}
	return []Updategram{out}, nil
}

// matchesPattern reports whether a base row derives the given view tuple.
func matchesPattern(atom cq.Atom, headVars []string, headPos map[string]int, row, viewTuple relation.Tuple) bool {
	bound := make(map[string]relation.Value, len(atom.Args))
	for col, arg := range atom.Args {
		if !arg.IsVar {
			if row[col] != arg.Const {
				return false
			}
			continue
		}
		if pos, exported := headPos[arg.Var]; exported {
			if row[col] != viewTuple[pos] {
				return false
			}
		}
		if prev, ok := bound[arg.Var]; ok {
			if prev != row[col] {
				return false
			}
		} else {
			bound[arg.Var] = row[col]
		}
	}
	return true
}

// ApplyThroughView translates and applies a view update in one step,
// verifying afterwards that the view's new extent reflects exactly the
// requested change (no unexpected side effects) — if verification fails,
// the base changes are rolled back and an error returned.
func ApplyThroughView(v View, db *relation.Database, u Updategram) error {
	mv := NewMaterialized(v)
	if err := mv.Refresh(db); err != nil {
		return err
	}
	before := mv.Extent.Clone()
	baseUpdates, err := TranslateUpdate(v, db, u)
	if err != nil {
		return err
	}
	snapshot := db.Clone()
	for _, bu := range baseUpdates {
		if err := bu.Apply(db); err != nil {
			restore(db, snapshot)
			return err
		}
	}
	if err := mv.Refresh(db); err != nil {
		restore(db, snapshot)
		return err
	}
	// Expected extent: before minus deletes plus inserts.
	want := before.Clone()
	for _, t := range u.Deletes {
		want.Delete(t)
	}
	for _, t := range u.Inserts {
		if !want.Contains(t) {
			if err := want.Insert(t); err != nil {
				restore(db, snapshot)
				return err
			}
		}
	}
	if !mv.Extent.Equal(want) {
		restore(db, snapshot)
		return fmt.Errorf("view: update through %s has side effects (extent %v, want %v)",
			v.Name, mv.Extent.Rows(), want.Rows())
	}
	return nil
}

// restore copies snapshot's relations back into db.
func restore(db, snapshot *relation.Database) {
	for _, r := range snapshot.Relations() {
		db.Put(r)
	}
}
