package repro

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docCheckedPackages are the packages whose exported API must be fully
// documented: every exported type, function, method, and var/const
// (directly or through its declaration group), plus a package comment.
// CI runs this test (go test .), so the godoc contract cannot rot
// silently. Extend the list as more packages stabilize their APIs.
var docCheckedPackages = []string{
	"internal/cq",
	"internal/faults",
	"internal/glav",
	"internal/pdms",
	"internal/perfledger",
	"internal/relation",
	"internal/store",
	"internal/transport",
	"internal/view",
}

// TestExportedDocs fails for every exported identifier in the checked
// packages that lacks a doc comment — the in-repo equivalent of
// revive's "exported" rule, with no external tooling needed.
func TestExportedDocs(t *testing.T) {
	for _, dir := range docCheckedPackages {
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			checkPackageDocs(t, dir)
		})
	}
}

func checkPackageDocs(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	packageDoc := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		if f.Doc != nil {
			packageDoc = true
		}
		for _, decl := range f.Decls {
			for _, miss := range undocumented(decl) {
				pos := fset.Position(miss.pos)
				t.Errorf("%s:%d: exported %s %s has no doc comment",
					pos.Filename, pos.Line, miss.kind, miss.name)
			}
		}
	}
	if !packageDoc {
		t.Errorf("%s: no file carries a package doc comment", dir)
	}
}

type missingDoc struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented returns the exported identifiers declared by decl that
// have no doc comment. For grouped var/const/type declarations a doc
// comment on the group covers its specs, matching godoc's rendering.
func undocumented(decl ast.Decl) []missingDoc {
	var out []missingDoc
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			return nil // method on an unexported type: not API surface
		}
		name := d.Name.Name
		if d.Recv != nil {
			name = fmt.Sprintf("(%s).%s", receiverName(d.Recv), name)
		}
		out = append(out, missingDoc{kind: "func", name: name, pos: d.Pos()})
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
					out = append(out, missingDoc{kind: "type", name: s.Name.Name, pos: s.Pos()})
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && s.Doc == nil && d.Doc == nil {
						out = append(out, missingDoc{kind: d.Tok.String(), name: n.Name, pos: n.Pos()})
					}
				}
			}
		}
	}
	return out
}

func receiverExported(recv *ast.FieldList) bool {
	return ast.IsExported(receiverName(recv))
}

func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
