package repro

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file is the OS-process acceptance for the push-replication
// tentpole: a `revere serve -push` process streams its committed
// changes to a `revere query -push -watch` coordinator process, which
// must converge on every mutation with its scan counter frozen — the
// wire carries updategrams, not rescans — and print a digest
// byte-identical to a cold coordinator that rescans the same
// deployment. The second test is the multi-node durability churn: two
// durable serve processes are SIGKILLed and rejoined (with fingerprint
// movement) under concurrent watch-mode client load, and every client
// converges to the cold-rescan oracle digest.

// pushCounterLine matches the query command's cumulative push-counter
// line (printed only with -push).
var pushCounterLine = regexp.MustCompile(`^push batches (\d+) records (\d+) gaps (\d+)$`)

// pushWatchResult is one successful iteration of a -push -watch query
// process: sync counters, push counters, and the answer digest.
type pushWatchResult struct {
	scans, deltas          int
	batches, records, gaps int
	answers, oracle        int
	digest                 string
}

// nextPush blocks until the -push watch coordinator completes one
// successful iteration (sync line, push line, digest line) and returns
// it. Failed iterations are skipped, like watchProc.next.
func (w *watchProc) nextPush(t *testing.T) pushWatchResult {
	t.Helper()
	deadline := time.After(60 * time.Second)
	var res pushWatchResult
	haveSync, havePush := false, false
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("parsing %q: %v", s, err)
		}
		return n
	}
	for {
		select {
		case line, ok := <-w.lines:
			if !ok {
				t.Fatal("watch coordinator exited mid-test")
			}
			line = strings.TrimSpace(line)
			if m := syncLine.FindStringSubmatch(line); m != nil {
				res.scans, res.deltas = atoi(m[1]), atoi(m[2])
				haveSync = true
				continue
			}
			if m := pushCounterLine.FindStringSubmatch(line); m != nil {
				res.batches, res.records, res.gaps = atoi(m[1]), atoi(m[2]), atoi(m[3])
				havePush = true
				continue
			}
			if m := digestLine.FindStringSubmatch(line); m != nil {
				if !haveSync || !havePush {
					t.Fatal("digest line arrived before its sync/push counter lines")
				}
				res.answers, res.oracle, res.digest = atoi(m[1]), atoi(m[2]), m[3]
				return res
			}
		case <-deadline:
			t.Fatal("no successful push-watch iteration within the deadline")
		}
	}
}

// TestPushProcessWatch boots a `revere serve -push` process that keeps
// committing a deterministic mutation stream, subscribes a
// `revere query -push -watch` coordinator process to it, and asserts
// the coordinator rides the mutation stream to convergence purely on
// pushed updategrams: after the cold fill, the cumulative scan and
// delta counters never move again, the push record counter accounts for
// every committed row, no gap fires, and the converged digest is
// byte-identical to a cold coordinator that full-scans the final state.
func TestPushProcessWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes and compiles the binary")
	}
	bin := buildRevere(t)
	const mutateRounds = 5 // rows per served peer, 8 served peers

	p := startServeAt(t, bin, "8:16", "127.0.0.1:0",
		"-push", "-mutate", strconv.Itoa(mutateRounds), "-mutate-every", "50ms")
	w := startWatchQuery(t, bin, "-remote", "8:16="+p.addr,
		"-retry", "3", "-timeout", "2s", "-push", "-watch", "150ms")

	r := w.nextPush(t)
	if r.scans != 8 {
		t.Fatalf("cold fill scans = %d, want 8 (one per served relation)", r.scans)
	}
	coldScans := r.scans
	// Ride the stream until every mutated row is visible in the answer
	// set. The serve process inserts mutateRounds rows into each of the
	// 8 served peers, and each adds exactly one title to the answers.
	target := r.oracle + 8*mutateRounds
	for iters := 0; r.answers < target; iters++ {
		if iters > 200 {
			t.Fatalf("never converged: answers %d, want %d", r.answers, target)
		}
		r = w.nextPush(t)
		if r.scans != coldScans || r.deltas != 0 {
			t.Fatalf("poll traffic during push watch: scans %d deltas %d, want %d/0",
				r.scans, r.deltas, coldScans)
		}
	}
	if r.answers != target {
		t.Errorf("converged answers %d, want exactly %d", r.answers, target)
	}
	if r.records < 8*mutateRounds {
		t.Errorf("push records %d, want >= %d (every committed row pushed)", r.records, 8*mutateRounds)
	}
	if r.batches == 0 || r.gaps != 0 {
		t.Errorf("push batches %d gaps %d, want >0 batches and 0 gaps", r.batches, r.gaps)
	}

	// Differential: a cold coordinator that rescans the final state must
	// print the same digest the push-fed coordinator converged to.
	coldOut := runQueryProcessRaw(t, bin, "-remote", "8:16="+p.addr)
	_, _, coldAnswers, coldDigest := parseQueryOutput(t, coldOut)
	if coldAnswers != r.answers {
		t.Errorf("cold coordinator answers %d, push coordinator %d", coldAnswers, r.answers)
	}
	if coldDigest != r.digest {
		t.Errorf("push-fed digest %s != cold-rescan digest %s", r.digest, coldDigest)
	}

	if err := w.stop(); err != nil {
		t.Errorf("watch coordinator did not stop cleanly: %v", err)
	}
	if err := p.shutdown(); err != nil {
		t.Errorf("serve process did not shut down cleanly: %v", err)
	}
}

// TestDurableMultiNodeChurnUnderWatchLoad is the multi-node churn
// acceptance: two durable serve processes host disjoint peer ranges,
// two watch-mode coordinator processes query them concurrently, and
// each server in turn is SIGKILLed and restarted over its store
// directory with fingerprint movement (-extra). Both coordinators must
// ride out both crashes — rejoining each recovered node via Delta
// records only, never a rescan — and converge to answer digests
// byte-identical to a cold coordinator that rescans the final
// deployment.
func TestDurableMultiNodeChurnUnderWatchLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes and compiles the binary")
	}
	bin := buildRevere(t)
	dir1, dir2 := t.TempDir(), t.TempDir()

	_, _, localDigest := runQueryProcess(t, bin)

	p1 := startServeAt(t, bin, "6:11", "127.0.0.1:0", "-data", dir1)
	p2 := startServeAt(t, bin, "11:16", "127.0.0.1:0", "-data", dir2)
	for _, p := range []*serveProc{p1, p2} {
		if populated, recovered, _, _ := recoverySummary(t, p); populated != 5 || recovered != 0 {
			t.Fatalf("fresh start populated %d recovered %d, want 5/0", populated, recovered)
		}
	}

	remoteArgs := []string{"-remote", "6:11=" + p1.addr, "-remote", "11:16=" + p2.addr,
		"-retry", "3", "-timeout", "2s", "-watch", "300ms"}
	w1 := startWatchQuery(t, bin, remoteArgs...)
	w2 := startWatchQuery(t, bin, remoteArgs...)
	watchers := []*watchProc{w1, w2}

	// Healthy baseline from both concurrent clients.
	base := make([]watchResult, len(watchers))
	for i, w := range watchers {
		base[i] = w.next(t)
		if base[i].digest != localDigest {
			t.Fatalf("watcher %d healthy digest %s != all-local %s", i+1, base[i].digest, localDigest)
		}
		if base[i].scans != 10 || base[i].deltas != 0 {
			t.Fatalf("watcher %d cold sync scans %d deltas %d, want 10/0", i+1, base[i].scans, base[i].deltas)
		}
	}

	// converge drains successful iterations until the watcher's answer
	// count reaches want, returning that iteration.
	converge := func(w *watchProc, idx, want int) watchResult {
		t.Helper()
		r := w.next(t)
		for iters := 0; r.answers != want; iters++ {
			if iters > 200 {
				t.Fatalf("watcher %d never converged: answers %d, want %d", idx, r.answers, want)
			}
			r = w.next(t)
		}
		return r
	}

	// Crash and rejoin each server in turn, with -extra 1 moving every
	// recovered peer's fingerprint so the rejoin ships real deltas.
	oracle := base[0].oracle
	p1.kill()
	p1b := startServeAt(t, bin, "6:11", p1.addr, "-data", dir1, "-extra", "1")
	if populated, recovered, _, _ := recoverySummary(t, p1b); populated != 0 || recovered != 5 {
		t.Fatalf("first restart populated %d recovered %d, want 0/5 (recovery, not rescan)", populated, recovered)
	}
	for i, w := range watchers {
		converge(w, i+1, oracle+5)
	}

	p2.kill()
	p2b := startServeAt(t, bin, "11:16", p2.addr, "-data", dir2, "-extra", "1")
	if populated, recovered, _, _ := recoverySummary(t, p2b); populated != 0 || recovered != 5 {
		t.Fatalf("second restart populated %d recovered %d, want 0/5 (recovery, not rescan)", populated, recovered)
	}
	final := make([]watchResult, len(watchers))
	for i, w := range watchers {
		final[i] = converge(w, i+1, oracle+10)
		// Both rejoins shipped Delta catch-ups only: one per recovered
		// relation, with the scan counter frozen at the cold fill.
		if final[i].scans != base[i].scans {
			t.Errorf("watcher %d re-scanned: scans %d, want still %d", i+1, final[i].scans, base[i].scans)
		}
		if final[i].deltas != 10 {
			t.Errorf("watcher %d rejoin deltas %d, want 10 (one per recovered relation)", i+1, final[i].deltas)
		}
	}
	if final[0].digest != final[1].digest {
		t.Errorf("concurrent watchers disagree: %s vs %s", final[0].digest, final[1].digest)
	}

	// Cold-rescan oracle: a fresh coordinator full-scans the final
	// deployment and must land on the same bytes.
	coldOut := runQueryProcessRaw(t, bin, "-remote", "6:11="+p1b.addr, "-remote", "11:16="+p2b.addr)
	coldScans, coldDeltas, coldAnswers, coldDigest := parseQueryOutput(t, coldOut)
	if coldScans != 10 || coldDeltas != 0 {
		t.Errorf("cold coordinator sync scans %d deltas %d, want 10/0", coldScans, coldDeltas)
	}
	if coldAnswers != oracle+10 {
		t.Errorf("cold coordinator answers %d, want %d", coldAnswers, oracle+10)
	}
	for i, r := range final {
		if r.digest != coldDigest {
			t.Errorf("watcher %d digest %s != cold-rescan digest %s", i+1, r.digest, coldDigest)
		}
	}

	for i, w := range watchers {
		if err := w.stop(); err != nil {
			t.Errorf("watcher %d did not stop cleanly: %v", i+1, err)
		}
	}
	for i, p := range []*serveProc{p1b, p2b} {
		if err := p.shutdown(); err != nil {
			t.Errorf("server %d did not shut down cleanly: %v", i+1, err)
		}
	}
}
