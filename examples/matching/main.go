// Matching: the corpus-based tools of §4 — train LSD-style classifiers
// on mapped sources, match a brand-new schema, correlate predictions to
// match two unseen schemas against each other, and run DESIGNADVISOR on
// a partial design (including the paper's TA-table advice).
package main

import (
	"fmt"
	"log"

	"repro/internal/advisor"
	"repro/internal/corpus"
	"repro/internal/learn"
	"repro/internal/match"
	"repro/internal/relation"
	"repro/internal/strutil"
	"repro/internal/workload"
)

func main() {
	d, _ := workload.DomainByName("courses")
	opts := workload.SourceOptions{Rows: 25, DropRate: 0.1, ObfuscateRate: 0.3}

	// Train on three "manually mapped" sources.
	var train []learn.Example
	for i := 0; i < 3; i++ {
		train = append(train, workload.GenSource(d, i, 11, opts).Columns()...)
	}
	lsd := match.NewLSD(strutil.DefaultSynonyms())
	lsd.Train(train)

	// Match a new source.
	fresh := workload.GenSource(d, 50, 11, opts)
	var cols []learn.Column
	for _, ex := range fresh.Columns() {
		cols = append(cols, ex.Column)
	}
	pred := lsd.Match(cols)
	fmt.Println("== LSD predictions for an unseen schema ==")
	correct := 0
	for _, c := range cols {
		best := pred[c.Name].Best()
		mark := " "
		if best == fresh.Truth[c.Name] {
			mark = "✓"
			correct++
		}
		fmt.Printf("  %s %-18s → %-12s (truth: %s)\n", mark, c.Name, best, fresh.Truth[c.Name])
	}
	fmt.Printf("accuracy: %d/%d (paper band: 70-90%%)\n\n", correct, len(cols))

	// MATCHINGADVISOR: two schemas the system never saw, matched by
	// correlating classifier predictions.
	s1 := workload.GenSource(d, 60, 11, opts)
	s2 := workload.GenSource(d, 61, 11, opts)
	var c1, c2 []learn.Column
	for _, ex := range s1.Columns() {
		c1 = append(c1, ex.Column)
	}
	for _, ex := range s2.Columns() {
		c2 = append(c2, ex.Column)
	}
	fmt.Println("== MatchingAdvisor: correlating predictions across two unseen schemas ==")
	corrs := lsd.Correlate(c1, c2, 0.3)
	for _, cr := range corrs {
		fmt.Printf("  %-18s ≈ %-18s (%.2f)\n", cr.A, cr.B, cr.Score)
	}
	p, r, f1 := match.CorrespondenceQuality(corrs, s1.Truth, s2.Truth)
	fmt.Printf("precision %.2f, recall %.2f, F1 %.2f\n\n", p, r, f1)

	// DESIGNADVISOR over a corpus of generated schemas. The dictionary
	// lets Italian vocabulary fold into the English statistics.
	c := corpus.New(strutil.DefaultSynonyms())
	c.Dictionary = strutil.DefaultDictionary()
	for _, dom := range workload.Domains() {
		for i := 0; i < 3; i++ {
			src := workload.GenSource(dom, i, 11, opts)
			db := relation.NewDatabase()
			db.Put(src.Data)
			c.Add(&corpus.Entry{Name: fmt.Sprintf("%s_%d", dom.Name, i),
				Relations: []relation.Schema{src.Schema}, Sample: db})
		}
	}
	// TA advice needs a corpus schema that separates TA info.
	c.Add(&corpus.Entry{Name: "uw_with_ta", Relations: []relation.Schema{
		relation.NewSchema("course", relation.Attr("title"), relation.Attr("instructor"), relation.Attr("room")),
		relation.NewSchema("ta", relation.Attr("ta_name"), relation.Attr("ta_email")),
	}})
	adv := &advisor.DesignAdvisor{Corpus: c}

	fmt.Println("== DesignAdvisor: partial schema (title, teacher, seats) ==")
	partial := relation.NewSchema("mycourses",
		relation.Attr("title"), relation.Attr("teacher"), relation.Attr("seats"))
	for _, prop := range adv.Propose(partial, 3) {
		fmt.Printf("  %-16s sim=%.3f fit=%.3f\n", prop.Entry.Name, prop.Sim, prop.Fit)
	}
	fmt.Printf("auto-complete suggestions: %v\n\n", adv.AutoComplete(partial, 6))

	// The paper's TA scenario: the coordinator crams TA fields into the
	// course table; the advisor objects.
	fmt.Println("== design monitoring: TA info inside the course table ==")
	mixed := relation.NewSchema("course",
		relation.Attr("title"), relation.Attr("instructor"), relation.Attr("room"),
		relation.Attr("ta_name"), relation.Attr("ta_email"))
	for _, a := range adv.ReviewDesign(mixed) {
		fmt.Println(" ", a.Detail)
	}
	if len(adv.ReviewDesign(mixed)) == 0 {
		log.Fatal("expected split-table advice")
	}

	// §4.4: querying an unfamiliar database in the user's own
	// terminology — the QueryAdvisor proposes well-formed queries with
	// example answers.
	fmt.Println("\n== QueryAdvisor: Italian user, English schema (§4.4) ==")
	schema := []relation.Schema{fresh.Schema}
	db := relation.NewDatabase()
	db.Put(fresh.Data)
	qadv := &advisor.QueryAdvisor{Corpus: c}
	// The user asks for instructor ("docente") and room ("aula") of
	// every course ("corso") — without knowing the schema says
	// course(teacher, venue, ...).
	props2, err := qadv.Propose(advisor.Intent{
		Concept: "corso",
		Wants:   []string{"docente", "aula"},
	}, schema, db, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range props2 {
		fmt.Printf("  score %.2f  %s\n", p.Score, p.Query)
		for _, row := range p.SampleAnswers {
			fmt.Printf("    e.g. %v\n", row)
		}
	}
	if len(props2) == 0 {
		fmt.Println("  (no proposal — corpus dictionary missing?)")
	}
}
