// DElearning: the paper's running example (§1.1–§3). Universities with
// independently evolved schemas join a peer data management system by
// mapping to their nearest neighbor; a student then queries the whole
// coalition's course inventory through their local university's
// vocabulary — including across a language boundary (Rome ↔ Trento).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/relation"
)

func main() {
	rev := core.New(core.Options{})

	// Figure 2's coalition, abridged: Berkeley, MIT, Oxford, Rome, Trento.
	// Each uses its own schema.
	add := func(peer string, schema relation.Schema, rows ...[]string) {
		p, err := rev.AddPeer(peer, schema)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			t := make(relation.Tuple, len(r))
			for i, v := range r {
				t[i] = relation.SV(v)
			}
			if err := p.Insert(schema.Name, t); err != nil {
				log.Fatal(err)
			}
		}
	}
	add("berkeley", relation.NewSchema("course", relation.Attr("title"), relation.Attr("instructor")),
		[]string{"Ancient History 101", "Prof. Stone"},
		[]string{"Intro to Databases", "Prof. Rivers"})
	add("mit", relation.NewSchema("subject", relation.Attr("name"), relation.Attr("teacher")),
		[]string{"Intermediate Ancient History", "Prof. Brick"})
	add("oxford", relation.NewSchema("offering", relation.Attr("label"), relation.Attr("don")),
		[]string{"Graduate Seminar: Antiquity", "Prof. Spire"})
	add("rome", relation.NewSchema("corso", relation.Attr("titolo"), relation.Attr("docente")),
		[]string{"Storia Romana", "Prof.ssa Bianchi"})
	add("trento", relation.NewSchema("insegnamento", relation.Attr("titolo"), relation.Attr("docente")),
		[]string{"Archeologia Alpina", "Prof. Verdi"})

	// Local mappings between neighbors only — no global schema. Trento
	// maps to Rome ("it would be much easier for Trento to provide a
	// mapping to the Rome schema and leverage their previous mapping
	// efforts").
	mapPair := func(id, a, qa, b, qb string) {
		if err := rev.MapPeers(id+"_f", a, qa, b, qb); err != nil {
			log.Fatal(err)
		}
		if err := rev.MapPeers(id+"_b", b, qb, a, qa); err != nil {
			log.Fatal(err)
		}
	}
	mapPair("bm", "berkeley", "m(T, I) :- course(T, I)", "mit", "m(T, I) :- subject(T, I)")
	mapPair("mo", "mit", "m(T, I) :- subject(T, I)", "oxford", "m(T, I) :- offering(T, I)")
	mapPair("or", "oxford", "m(T, I) :- offering(T, I)", "rome", "m(T, I) :- corso(T, I)")
	mapPair("rt", "rome", "m(T, I) :- corso(T, I)", "trento", "m(T, I) :- insegnamento(T, I)")

	// A Trento student builds a custom curriculum: every course in the
	// coalition, asked for in Italian vocabulary.
	res, err := rev.Ask("trento", "q(T, D) :- insegnamento(T, D)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("courses visible from Trento (%d peers touched, %d rewritings):\n",
		res.Stats.PeersTouched, res.Stats.Kept)
	res.Answers.SortRows()
	for _, row := range res.Answers.Rows() {
		fmt.Printf("  %-35s %s\n", row[0], row[1])
	}

	// The same query at Berkeley sees the same inventory, in its terms.
	res2, err := rev.Ask("berkeley", "q(T) :- course(T, I)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBerkeley sees %d courses through the same mapping web\n", res2.Answers.Len())
}
