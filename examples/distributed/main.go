// Distributed Piazza: the star network of the piazza example, but with
// the leaf peers hosted behind transports — first the in-process
// loopback (the differential reference), then a real TCP server on an
// ephemeral port — while the hub stays local to the coordinator. The
// same query runs against all three placements and must produce the
// same answers; only the placement of the bytes changes. To run the
// same idea as three separate OS processes, see the `revere serve` /
// `revere query` quickstart in README.md.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/internal/pdms"
	"repro/internal/transport"
	"repro/internal/workload"
)

const peers = 5

// buildCoordinator assembles a network where peer0 (the hub) is local
// and every leaf is remote through tr.
func buildCoordinator(g *workload.GeneratedNetwork, tr pdms.Transport) (*pdms.Network, error) {
	n := pdms.NewNetwork()
	if err := n.AddPeer(g.Net.Peer(workload.PeerName(0))); err != nil {
		return nil, err
	}
	for i := 1; i < peers; i++ {
		if _, err := n.AddRemotePeer(context.Background(), workload.PeerName(i), tr); err != nil {
			return nil, err
		}
	}
	for _, m := range g.Net.Mappings() {
		if err := n.AddMapping(m); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// countAnswers streams the cross-schema title query at the hub.
func countAnswers(n *pdms.Network, g *workload.GeneratedNetwork) (int, error) {
	cur, err := n.Query(context.Background(), pdms.Request{
		Peer: workload.PeerName(0), Query: g.TitleQuery(0)})
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	answers := 0
	for cur.Next() {
		answers++
	}
	return answers, cur.Err()
}

func main() {
	gen := func() *workload.GeneratedNetwork {
		g, err := workload.GenNetwork(workload.NetworkSpec{
			Topology: workload.Star, Peers: peers, Seed: 11, RowsPerPeer: 12})
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	// Placement 1: everything in process (the reference).
	gLocal := gen()
	inproc, err := countAnswers(gLocal.Net, gLocal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process:       %d answers (oracle %d)\n", inproc, len(gLocal.AllTitles))

	// Placement 2: the leaves behind a loopback transport — the wire
	// codecs run, no sockets involved.
	gLoop := gen()
	var leaves []*pdms.Peer
	for i := 1; i < peers; i++ {
		leaves = append(leaves, gLoop.Net.Peer(workload.PeerName(i)))
	}
	loopNet, err := buildCoordinator(gLoop, pdms.NewLoopback(leaves...))
	if err != nil {
		log.Fatal(err)
	}
	viaLoop, err := countAnswers(loopNet, gLoop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via loopback:     %d answers\n", viaLoop)

	// Placement 3: the leaves served over real TCP on an ephemeral port.
	gTCP := gen()
	var served []*pdms.Peer
	for i := 1; i < peers; i++ {
		served = append(served, gTCP.Net.Peer(workload.PeerName(i)))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := transport.NewServer(served...)
	go srv.Serve(ln)
	defer srv.Close()
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	tcpNet, err := buildCoordinator(gTCP, client)
	if err != nil {
		log.Fatal(err)
	}
	viaTCP, err := countAnswers(tcpNet, gTCP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via TCP (%s): %d answers\n", ln.Addr(), viaTCP)

	// Warm distributed queries move no tuples: the fingerprint sync
	// notices nothing changed and the replicas are reused.
	again, err := countAnswers(tcpNet, gTCP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall placements agree: %v\n", inproc == viaLoop && viaLoop == viaTCP && viaTCP == again)
}
