// Department portal: the MANGROVE instant-gratification loop of §2.2 on
// a synthetic department site — annotate pages, publish, and watch the
// calendar / Who's Who / search applications update the moment content
// is published.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/htmlx"
	"repro/internal/mangrove"
	"repro/internal/webgen"
)

func main() {
	g := webgen.Generate(webgen.Options{Seed: 7, NPeople: 5, NCourses: 6,
		NTalks: 2, ConflictRate: 0.5, Malicious: true})
	if err := webgen.AnnotateAll(g); err != nil {
		log.Fatal(err)
	}
	repo := mangrove.NewRepository(mangrove.DepartmentSchema())
	for _, url := range g.Site.URLs() {
		if _, err := repo.Publish(url, g.Site.Get(url)); err != nil {
			log.Fatal(err)
		}
	}

	cal := &apps.Calendar{Repo: repo}
	fmt.Println("== department calendar ==")
	for _, e := range cal.Entries() {
		fmt.Println(" ", e)
	}

	fmt.Println("\n== Who's Who (phones cleaned per application policy) ==")
	dir := &apps.WhosWho{Repo: repo,
		Policy: mangrove.PreferSourcePolicy{Prefix: "http://dept.example.edu/people/"}}
	for _, e := range dir.Entries() {
		fmt.Printf("  %-22s %-16v %s (%s)\n", e.Name, e.Phones, e.Email, e.Office)
	}

	// Instant gratification: an instructor publishes a new talk page and
	// immediately sees it on the calendar.
	fmt.Println("\n== author publishes a new talk ==")
	page, err := htmlx.Parse(`<html><body><div>
<p>PDMS in Practice</p><p>Igor Tatarinov</p><p>Friday</p><p>15:00</p><p>Allen 305</p>
</div></body></html>`)
	if err != nil {
		log.Fatal(err)
	}
	for _, sel := range [][2]string{
		{"PDMS in Practice", "title"}, {"Igor Tatarinov", "speaker"},
		{"Friday", "day"}, {"15:00", "time"}, {"Allen 305", "room"},
	} {
		if err := htmlx.AnnotateText(page, sel[0], sel[1]); err != nil {
			log.Fatal(err)
		}
	}
	div := page.Find(func(n *htmlx.Node) bool { return n.Tag == "div" })
	if err := htmlx.AnnotateElement(page, div, "talk"); err != nil {
		log.Fatal(err)
	}
	before := len(cal.Entries())
	if _, err := repo.Publish("http://dept.example.edu/talks/new.html", page); err != nil {
		log.Fatal(err)
	}
	after := cal.Entries()
	fmt.Printf("calendar grew %d → %d entries the moment publish returned\n", before, len(after))

	fmt.Println("\n== annotation-enabled search: 'history' ==")
	s := &apps.Search{Repo: repo}
	for _, h := range s.Query("history", 3) {
		fmt.Printf("  %.3f [%s] %.60s\n", h.Score, h.Type, h.Snippet)
	}

	fmt.Println("\n== proactive inconsistency finder ==")
	for _, v := range mangrove.FindInconsistencies(repo,
		mangrove.RequiredTag{TypeTag: "course", LeafPath: "course.room"},
		mangrove.ReferentialTag{FromType: "course", FromPath: "course.instructor",
			ToType: "person", ToPath: "person.name"}) {
		fmt.Println(" ", v)
	}
}
