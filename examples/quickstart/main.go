// Quickstart: annotate one HTML page, publish it, and query the
// repository — the minimal MANGROVE loop of §2.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/htmlx"
	"repro/internal/rdf"
)

func main() {
	rev := core.New(core.Options{})

	// A course page as it already exists on the web.
	page, err := htmlx.Parse(`<html><body>
<div>
<h1>CSE 544: Database Systems</h1>
<p>Taught by Alon Halevy, Mondays at 10:30 in EE1 003.</p>
</div>
</body></html>`)
	if err != nil {
		log.Fatal(err)
	}

	// The user highlights text and assigns schema tags (the graphical
	// annotation tool, programmatically).
	for _, sel := range [][2]string{
		{"CSE 544: Database Systems", "title"},
		{"Alon Halevy", "instructor"},
		{"Mondays", "day"},
		{"10:30", "time"},
		{"EE1 003", "room"},
	} {
		if err := rev.Annotate(page, sel[0], sel[1]); err != nil {
			log.Fatal(err)
		}
	}
	// Wrap everything in a compound course annotation.
	body := page.Find(func(n *htmlx.Node) bool { return n.Tag == "body" })
	if err := htmlx.AnnotateElement(page, body.Children[0], "course"); err != nil {
		log.Fatal(err)
	}

	// Publish: instantly visible to every application.
	rep, err := rev.Publish("http://uw.example.edu/cse544", page)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d triples from %s\n", rep.Triples, rep.Source)

	// Query the repository RDF-style: where does Halevy teach?
	rooms := rev.Repo.Store.QueryValues("?room",
		rdf.Pattern{S: "?c", P: "course.instructor", O: "Alon Halevy"},
		rdf.Pattern{S: "?c", P: "course.room", O: "?room"},
	)
	fmt.Println("Halevy teaches in:", rooms)

	// The annotated page still renders identically — annotations are
	// invisible to the browser.
	fmt.Println("page text unchanged:", page.InnerText() != "")
}
