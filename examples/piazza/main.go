// Piazza operations: the distributed-systems side of §3.1.2 — peers
// join, views are placed where the workload needs them, updategrams keep
// copies fresh, updates flow through views, and a peer leaves without
// taking the network down.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cq"
	"repro/internal/pdms"
	"repro/internal/relation"
	"repro/internal/view"
	"repro/internal/workload"
)

func main() {
	g, err := workload.GenNetwork(workload.NetworkSpec{
		Topology: workload.Star, Peers: 5, Seed: 11, RowsPerPeer: 12})
	if err != nil {
		log.Fatal(err)
	}
	net := g.Net
	fmt.Printf("star network: %d peers, %d mappings\n", net.NumPeers(), net.NumMappings())

	// A leaf peer runs the same query repeatedly; the optimizer places
	// copies of the remote relations it reads.
	q := g.TitleQuery(1)
	cm := pdms.CostModel{RemoteFactor: 10}
	before, err := net.EstimateCost(workload.PeerName(1), q, cm)
	if err != nil {
		log.Fatal(err)
	}
	placements, err := net.PlaceViews(
		[]pdms.WorkloadQuery{{Peer: workload.PeerName(1), Query: q, Freq: 20}}, 3, cm)
	if err != nil {
		log.Fatal(err)
	}
	after, err := net.EstimateCost(workload.PeerName(1), q, cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nview placement: estimated cost %.0f → %.0f\n", before, after)
	for _, p := range placements {
		fmt.Printf("  placed copy of %-18s at %s (benefit %.0f)\n", p.Source, p.AtPeer, p.Benefit)
	}

	// Updates propagate as updategrams; local copies stay fresh.
	hub := g.Specs[0]
	row := make(relation.Tuple, hub.Schema.Arity())
	for i := range row {
		row[i] = relation.SV(fmt.Sprintf("new-%d", i))
	}
	stats, err := net.Publish(workload.PeerName(0), hub.Schema.Name,
		view.Updategram{Relation: hub.Schema.Name, Inserts: []relation.Tuple{row}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublish at hub: %d views touched, %d delta tuples shipped\n",
		stats.ViewsTouched, stats.TuplesShipped)
	res, err := net.AnswerUsingCopies(workload.PeerName(1), q, pdms.ReformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers via local copies: %d (oracle %d)\n",
		res.Answers.Len(), len(g.AllTitles)+1)

	// Update through a view: delete a hub course through the selection
	// view a coordinator actually sees.
	fmt.Println("\nupdate through a view:")
	titleAttr := g.TitleAttr[0]
	col := hub.Schema.AttrIndex(titleAttr)
	victim := g.Net.Peer(workload.PeerName(0)).Store.Get(hub.Schema.Name).Row(0).Clone()
	vars := make([]cq.Term, hub.Schema.Arity())
	head := make([]string, hub.Schema.Arity())
	for i := range vars {
		v := fmt.Sprintf("V%d", i)
		vars[i] = cq.V(v)
		head[i] = v
	}
	allView := view.NewView("hub_courses", cq.Query{HeadPred: "v", HeadVars: head,
		Body: []cq.Atom{{Pred: hub.Schema.Name, Args: vars}}})
	hubStore := g.Net.Peer(workload.PeerName(0)).Store
	if err := view.ApplyThroughView(allView, hubStore, view.Updategram{
		Relation: "hub_courses", Deletes: []relation.Tuple{victim}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deleted %q through view %s\n", victim[col], allView.Name)

	// A peer leaves; the rest keeps answering — streamed through a
	// cursor, so answers arrive as the union's join trees produce them.
	if err := net.RemovePeer(workload.PeerName(4)); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	cur, err := net.Query(ctx, pdms.Request{Peer: workload.PeerName(1), Query: q})
	if err != nil {
		log.Fatal(err)
	}
	answers := 0
	for cur.Next() {
		answers++
	}
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter %s left: %d peers remain, query still yields %d answers\n",
		workload.PeerName(4), net.NumPeers(), answers)

	// Existence check: Limit=1 stops the whole union after the first
	// distinct answer instead of materializing everything.
	exist, err := net.Query(ctx, pdms.Request{
		Peer: workload.PeerName(1), Query: q, Limit: 1})
	if err != nil {
		log.Fatal(err)
	}
	found := exist.Next()
	exist.Close()
	fmt.Printf("any answer at all? %v (stopped after the first, %s exec)\n",
		found, exist.ExecTime())
}
