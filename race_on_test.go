//go:build race

package repro

// raceEnabled reports whether this test binary was built with the race
// detector. Perf gates skip under race: instrumentation slows the
// measured path ~5-10x, so comparing against a non-race baseline would
// fail every run without indicating a regression.
const raceEnabled = true
